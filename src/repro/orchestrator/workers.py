"""Execution backends: spawn-per-job processes and the warm worker pool.

The orchestrator's scheduling loop (:mod:`repro.orchestrator.pool`) is
backend-agnostic: it launches attempts, polls their pipes, enforces
deadlines and settles outcomes.  *How* an attempt gets a process is this
module's job, in two flavours:

* ``spawn`` — the original contract: every attempt runs in a fresh
  process, maximally isolated, paying a fork + teardown per job.
* ``warm`` — a persistent pool: processes start once, serve many jobs
  over a duplex pipe, and keep their interpreter, imports, pure memo
  caches and attached workload-bank blobs hot between jobs.  A job
  failure is reported and the worker keeps serving; a timeout or crash
  kills *that* worker only, and a replacement is spawned lazily.  Each
  worker retires after ``recycle_after`` jobs as a leak backstop.

Both backends ship identical wire payloads (``SimulationResult.to_dict``
on success; error + traceback + RNG snapshot + fastpath flag on
failure), so crash dumps, retries, manifests and telemetry behave the
same and results are bit-identical across modes.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Callable, Dict, List, Optional

from repro import fastpath
from repro.obs.crashdump import rng_snapshot

#: Pool modes accepted by the orchestrator and the CLI.
POOL_MODES = ("warm", "spawn")

#: Default jobs one warm worker serves before being recycled.
DEFAULT_RECYCLE_AFTER = 32


class WorkerStartupError(RuntimeError):
    """The pool could not start a worker process (fatal for the run)."""


def _error_payload(exc: BaseException) -> dict:
    return {
        "status": "error",
        "error": f"{type(exc).__name__}: {exc}",
        "traceback": traceback.format_exc(),
        "rng": rng_snapshot(),
        "fastpath": fastpath.enabled(),
    }


# ----------------------------------------------------------------------
# Worker entry points (children of the orchestrator process)
# ----------------------------------------------------------------------

def _spawn_worker_entry(conn, runner, job_payload, timing: bool = False) -> None:
    """Spawn mode: run one job, ship the outcome, exit.

    Failures ship the worker's RNG state and fast-path flag alongside
    the traceback so the parent can write a replayable crash dump.
    With *timing* on (fleet spans), success payloads additionally carry
    ``{"timing": {"phases": {...}}}`` — ``time.monotonic()`` pairs in
    the parent's clock domain (CLOCK_MONOTONIC is system-wide).
    """
    from repro.orchestrator.jobs import JobSpec

    try:
        run_t0 = time.monotonic()
        result = runner(JobSpec.from_dict(job_payload))
        payload = {"status": "ok", "result": result.to_dict()}
        if timing:
            payload["timing"] = {
                "phases": {"worker_run": [run_t0, time.monotonic()]},
            }
        conn.send(payload)
    except BaseException as exc:  # isolate *everything*, incl. KeyboardInterrupt
        conn.send(_error_payload(exc))
    finally:
        conn.close()


def _warm_worker_main(conn, runner, bank_root, timing: bool = False) -> None:
    """Warm mode: serve jobs from the request pipe until told to exit.

    A job exception is reported like spawn mode's and the worker keeps
    serving — worker lifetime is the parent's decision (recycling,
    timeout kills), not the job's.  Interpreter-fatal signals
    (KeyboardInterrupt, SystemExit) still end the worker after
    reporting, and the parent replaces it.  The one-off workload-bank
    attach is timed when *timing* is on and reported with the worker's
    first job (the only job that ever waited on it).
    """
    attach_span = None
    if bank_root is not None:
        from repro.workloads import bank

        attach_t0 = time.monotonic()
        bank.install(bank_root)
        if timing:
            attach_span = [attach_t0, time.monotonic()]
    # Compression results and scrambler keystreams are pure functions of
    # line content / (seed, address), so a warm worker shares their memo
    # caches across all its jobs (a sweep touches the same workload's
    # lines over and over, once per grid point).
    from repro.compression import engine as _engine
    from repro.scramble import scrambler as _scrambler

    _engine.enable_shared_caches()
    _scrambler.enable_shared_caches()
    from repro.orchestrator.jobs import JobSpec

    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if not isinstance(message, dict) or message.get("cmd") == "exit":
                break
            try:
                run_t0 = time.monotonic()
                result = runner(JobSpec.from_dict(message["job"]))
                payload = {"status": "ok", "result": result.to_dict()}
                if timing:
                    phases = {"worker_run": [run_t0, time.monotonic()]}
                    if attach_span is not None:
                        phases["bank_attach"] = attach_span
                        attach_span = None
                    payload["timing"] = {"phases": phases}
                conn.send(payload)
            except Exception as exc:
                conn.send(_error_payload(exc))
            except BaseException as exc:
                conn.send(_error_payload(exc))
                break
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Parent-side backends
# ----------------------------------------------------------------------

@dataclass
class _WarmWorker:
    """Parent-side handle on one pooled worker process."""

    process: object
    conn: object
    jobs_done: int = 0


class SpawnBackend:
    """One fresh process per attempt (the original orchestrator mode)."""

    name = "spawn"

    def __init__(self, ctx, runner, timing: bool = False) -> None:
        self._ctx = ctx
        self._runner = runner
        self.timing = timing

    def set_timing(self, timing: bool) -> None:
        """Flip phase-timestamp reporting for workers launched later."""
        self.timing = bool(timing)

    def launch(self, job_payload):
        """Start one attempt; returns ``(process, conn, worker=None)``."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_spawn_worker_entry,
            args=(child_conn, self._runner, job_payload, self.timing),
            daemon=True,
        )
        try:
            process.start()
        except OSError as exc:
            parent_conn.close()
            child_conn.close()
            raise WorkerStartupError(f"could not start worker: {exc}") from exc
        child_conn.close()  # parent keeps only the read end
        return process, parent_conn, None

    def retire_ok(self, slot) -> None:
        """The attempt delivered a payload; the process is exiting."""
        slot.process.join()
        slot.conn.close()

    def retire_dead(self, slot) -> None:
        """The process died (payload already drained by the caller)."""
        slot.process.join()
        slot.conn.close()

    def kill(self, slot) -> None:
        """Deadline passed: force the attempt's process down."""
        _terminate(slot.process)
        slot.conn.close()

    def abort(self, running) -> None:
        """Interrupted mid-run: reap every in-flight worker."""
        for slot in running:
            if slot.process.is_alive():
                slot.process.terminate()
        for slot in running:
            _join_or_kill(slot.process)
            slot.conn.close()

    def shutdown(self) -> None:
        """Nothing persistent to tear down in spawn mode."""

    @staticmethod
    def wait(conns, timeout: Optional[float]) -> List[object]:
        """Block until a pipe is readable (or *timeout* elapses)."""
        return mp_connection.wait(conns, timeout=timeout)


class WarmPoolBackend:
    """Persistent warm workers serving jobs over duplex pipes."""

    name = "warm"

    def __init__(self, ctx, runner, bank_root=None,
                 recycle_after: int = DEFAULT_RECYCLE_AFTER,
                 timing: bool = False) -> None:
        if recycle_after < 1:
            raise ValueError("recycle_after must be >= 1")
        self._ctx = ctx
        self._runner = runner
        self._bank_root = str(bank_root) if bank_root is not None else None
        self._recycle_after = recycle_after
        self.timing = timing
        self._idle: List[_WarmWorker] = []
        #: every live worker, busy or idle (abort() must reach them all).
        self._workers: List[_WarmWorker] = []
        self.spawned = 0
        self.recycled = 0

    def set_timing(self, timing: bool) -> None:
        """Flip phase-timestamp reporting for workers spawned later."""
        self.timing = bool(timing)

    # -- pool plumbing --------------------------------------------------

    def _spawn_worker(self) -> _WarmWorker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_warm_worker_main,
            args=(child_conn, self._runner, self._bank_root, self.timing),
            daemon=True,
        )
        try:
            process.start()
        except OSError as exc:
            parent_conn.close()
            child_conn.close()
            raise WorkerStartupError(
                f"could not start warm worker: {exc}"
            ) from exc
        child_conn.close()
        worker = _WarmWorker(process=process, conn=parent_conn)
        self._workers.append(worker)
        self.spawned += 1
        return worker

    def _discard(self, worker: _WarmWorker) -> None:
        if worker in self._workers:
            self._workers.remove(worker)
        if worker in self._idle:
            self._idle.remove(worker)

    def _retire_gracefully(self, worker: _WarmWorker) -> None:
        self._discard(worker)
        try:
            worker.conn.send({"cmd": "exit"})
        except (BrokenPipeError, OSError):
            pass
        worker.conn.close()
        _join_or_kill(worker.process, grace_s=2.0)

    # -- backend interface ---------------------------------------------

    def launch(self, job_payload):
        """Hand the job to an idle worker (spawning one if none wait)."""
        while self._idle:
            worker = self._idle.pop()
            if worker.process.is_alive():
                break
            self._discard(worker)  # died while idle; replace below
            worker.conn.close()
        else:
            worker = self._spawn_worker()
        try:
            worker.conn.send({"job": job_payload})
        except (BrokenPipeError, OSError):
            # The worker died between jobs; replace it once.
            self._discard(worker)
            worker.conn.close()
            _join_or_kill(worker.process, grace_s=2.0)
            worker = self._spawn_worker()
            try:
                worker.conn.send({"job": job_payload})
            except (BrokenPipeError, OSError) as exc:
                raise WorkerStartupError(
                    f"fresh warm worker unreachable: {exc}"
                ) from exc
        return worker.process, worker.conn, worker

    def retire_ok(self, slot) -> None:
        """Job done: the worker goes back to the idle pool (or retires)."""
        worker = slot.worker
        worker.jobs_done += 1
        if worker.jobs_done >= self._recycle_after:
            # Leak backstop: retire the veteran; a fresh worker will be
            # spawned lazily if the queue still needs the slot.
            self._retire_gracefully(worker)
            self.recycled += 1
        else:
            self._idle.append(worker)

    def retire_dead(self, slot) -> None:
        """The worker crashed mid-job; drop it (replacement is lazy)."""
        self._discard(slot.worker)
        slot.process.join()
        slot.conn.close()

    def kill(self, slot) -> None:
        """Deadline passed: kill *this* worker; siblings are untouched."""
        self._discard(slot.worker)
        _terminate(slot.process)
        slot.conn.close()

    def abort(self, running) -> None:
        """Interrupted mid-run: take down every worker, busy or idle."""
        for worker in list(self._workers):
            if worker.process.is_alive():
                worker.process.terminate()
        for worker in list(self._workers):
            _join_or_kill(worker.process)
            worker.conn.close()
        self._workers.clear()
        self._idle.clear()

    def shutdown(self) -> None:
        """Normal end of run: ask every idle worker to exit, then reap."""
        for worker in list(self._workers):
            self._retire_gracefully(worker)

    @staticmethod
    def wait(conns, timeout: Optional[float]) -> List[object]:
        """Block until a pipe is readable (or *timeout* elapses)."""
        return mp_connection.wait(conns, timeout=timeout)


def _terminate(process) -> None:
    process.terminate()
    _join_or_kill(process, grace_s=5.0)


def _join_or_kill(process, grace_s: float = 5.0) -> None:
    process.join(grace_s)
    if process.is_alive():
        process.kill()
        process.join()


# ----------------------------------------------------------------------
# Backend registry
# ----------------------------------------------------------------------
#
# The orchestrator resolves its ``pool`` argument against this registry,
# so new execution backends (e.g. the cluster coordinator) plug in
# without the scheduling loop knowing them by name.  A factory takes
# ``(orchestrator, manifest)`` and returns ``(backend, cleanup)`` where
# ``cleanup`` is a zero-argument callable or None.

_BACKEND_FACTORIES: Dict[str, Callable] = {}


def register_backend(name: str, factory: Callable) -> None:
    """Register a named execution-backend factory."""
    _BACKEND_FACTORIES[name] = factory


def backend_factory(name: str) -> Callable:
    try:
        return _BACKEND_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown pool backend {name!r}; "
            f"registered: {available_backends()}"
        ) from None


def available_backends():
    """Registered backend names, sorted."""
    return tuple(sorted(_BACKEND_FACTORIES))


def _spawn_factory(orchestrator, manifest):
    backend = SpawnBackend(
        orchestrator._ctx, orchestrator.runner,
        timing=bool(getattr(orchestrator, "fleet_timing", False)),
    )
    return backend, None


def _warm_factory(orchestrator, manifest):
    bank_root = orchestrator.bank_dir
    cleanup = None
    if bank_root is None:
        if manifest is not None:
            # Durable runs keep their bank: entry keys fold in the
            # code fingerprint, so resumes reuse still-valid blobs.
            bank_root = manifest.run_dir / "bank"
        else:
            import shutil
            import tempfile

            bank_root = tempfile.mkdtemp(prefix="repro-bank-")
            cleanup = lambda: shutil.rmtree(bank_root, ignore_errors=True)
    backend = WarmPoolBackend(
        orchestrator._ctx, orchestrator.runner, bank_root=bank_root,
        recycle_after=orchestrator.recycle_after,
        timing=bool(getattr(orchestrator, "fleet_timing", False)),
    )
    return backend, cleanup


register_backend("spawn", _spawn_factory)
register_backend("warm", _warm_factory)


__all__ = [
    "DEFAULT_RECYCLE_AFTER",
    "POOL_MODES",
    "SpawnBackend",
    "WarmPoolBackend",
    "WorkerStartupError",
    "available_backends",
    "backend_factory",
    "register_backend",
]
