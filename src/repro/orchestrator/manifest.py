"""Resumable run manifests.

A *run directory* is the durable record of one orchestrated sweep::

    <run-dir>/run.json         grid spec + settings (written once)
    <run-dir>/manifest.jsonl   append-only per-job event log
    <run-dir>/results/<key>.json   SimulationResult payloads
    <run-dir>/telemetry.jsonl  structured progress records

The manifest is an event log, not a mutable table: every attempt and
terminal status is appended as one JSON line, and resuming replays the
log to find jobs whose last status is terminal (``done`` / ``cached``).
``failed`` is terminal for a single run but *not* across resumes — a
resume retries failed points, which is the whole point of resuming.

Crash safety: a run killed mid-append leaves a torn (newline-less)
trailing fragment.  :meth:`RunManifest.recover` — called by the
orchestrator before replaying the log — truncates the file back to the
last complete record and reports how many bytes were dropped, so a
resume starts from a clean log instead of choking on (or silently
merging into) the fragment.  :meth:`RunManifest.record` performs the
same self-healing before every append for the un-resumed case.  The
``manifest.torn_append`` chaos site exercises this by appending a torn
fragment after a real record.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Dict, Optional

from repro.sim.simulator import SimulationResult

SPEC_NAME = "run.json"
MANIFEST_NAME = "manifest.jsonl"
RESULTS_DIR = "results"

#: Statuses that a resume does not re-run.
COMPLETED_STATUSES = frozenset({"done", "cached"})


class RunManifest:
    """Reads and appends the durable state of one run directory."""

    def __init__(self, run_dir) -> None:
        self.run_dir = pathlib.Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        (self.run_dir / RESULTS_DIR).mkdir(exist_ok=True)
        self._manifest_path = self.run_dir / MANIFEST_NAME
        #: Optional bound :class:`repro.chaos.ChaosPlan` (None = inert).
        self.chaos = None
        #: Bytes dropped by torn-tail recovery so far (telemetry note).
        self.recovered_bytes = 0

    # -- run spec -------------------------------------------------------

    def write_spec(self, spec: Dict[str, object]) -> None:
        """Persist the grid spec once; resumes keep the original."""
        path = self.run_dir / SPEC_NAME
        if not path.exists():
            path.write_text(json.dumps(spec, indent=2, sort_keys=True) + "\n",
                            encoding="utf-8")

    def read_spec(self) -> Optional[Dict[str, object]]:
        path = self.run_dir / SPEC_NAME
        if not path.exists():
            return None
        return json.loads(path.read_text(encoding="utf-8"))

    # -- event log ------------------------------------------------------

    def record(self, entry: Dict[str, object]) -> None:
        """Append one event line (flushed immediately for crash safety).

        Self-healing: if a previous process died mid-append, the file
        ends in a torn fragment; appending after it would merge two
        records into one undecodable line and silently lose *this*
        entry.  The tail is truncated away first.
        """
        self.recover()
        line = json.dumps(entry, sort_keys=True) + "\n"
        if self.chaos is not None and self.chaos.should(
                "manifest.torn_append",
                f"{entry.get('key')}:{entry.get('status')}"):
            # A torn *extra* fragment after the real record: the next
            # append (or a resume) must truncate it back out.
            line += json.dumps(entry, sort_keys=True)[: max(
                1, len(line) // 2)]
        with open(self._manifest_path, "a", encoding="utf-8") as handle:
            handle.write(line)

    def recover(self) -> int:
        """Truncate a torn trailing record; returns bytes dropped (0 = clean).

        Crash-mid-append leaves a final line with no terminating
        newline.  Everything after the last ``\\n`` is dropped so the
        log ends on a complete record; the cumulative count is surfaced
        in the run's telemetry summary as a recovery note.
        """
        try:
            size = self._manifest_path.stat().st_size
        except OSError:
            return 0
        if size == 0:
            return 0
        with open(self._manifest_path, "rb+") as handle:
            handle.seek(-1, os.SEEK_END)
            if handle.read(1) == b"\n":
                return 0
            # Walk back to the last newline (bounded chunks, not a full
            # file read: manifests can be long-lived).
            position = size
            keep = 0
            chunk = 4096
            while position > 0:
                step = min(chunk, position)
                handle.seek(position - step)
                data = handle.read(step)
                newline = data.rfind(b"\n")
                if newline != -1:
                    keep = position - step + newline + 1
                    break
                position -= step
            dropped = size - keep
            handle.truncate(keep)
        self.recovered_bytes += dropped
        return dropped

    def job_statuses(self) -> Dict[str, str]:
        """Last recorded status per job key (replaying the event log)."""
        statuses: Dict[str, str] = {}
        if not self._manifest_path.exists():
            return statuses
        with open(self._manifest_path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue  # torn tail write from a killed run
                key = entry.get("key")
                status = entry.get("status")
                if key and status:
                    statuses[key] = status
        return statuses

    def wall_estimates(self) -> Dict[str, float]:
        """Latest successful wall clock per job *label*, for LPT ordering.

        Keyed by ``JobSpec.describe()`` labels rather than cache keys:
        keys fold in the code fingerprint, so they change on every source
        edit — exactly when a duration estimate is still useful.
        """
        estimates: Dict[str, float] = {}
        if not self._manifest_path.exists():
            return estimates
        with open(self._manifest_path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue
                if entry.get("status") != "done":
                    continue
                label, wall = entry.get("job"), entry.get("wall_s")
                if label and isinstance(wall, (int, float)) and wall > 0:
                    estimates[label] = float(wall)
        return estimates

    def completed_keys(self) -> Dict[str, str]:
        """Keys a resume can skip, with their terminal status."""
        return {
            key: status
            for key, status in self.job_statuses().items()
            if status in COMPLETED_STATUSES
        }

    # -- per-job results ------------------------------------------------

    def result_path(self, key: str) -> pathlib.Path:
        return self.run_dir / RESULTS_DIR / f"{key}.json"

    def store_result(self, key: str, result: SimulationResult) -> None:
        self.result_path(key).write_text(
            json.dumps(result.to_dict(), sort_keys=True), encoding="utf-8"
        )

    def load_result(self, key: str) -> Optional[SimulationResult]:
        path = self.result_path(key)
        try:
            return SimulationResult.from_dict(
                json.loads(path.read_text(encoding="utf-8"))
            )
        except (OSError, ValueError, KeyError, TypeError):
            return None


__all__ = ["COMPLETED_STATUSES", "RunManifest",
           "MANIFEST_NAME", "RESULTS_DIR", "SPEC_NAME"]
