"""Job specifications and the content-addressed cache-key contract.

A *job* is one grid point of a sweep: (benchmark, system, seed, scale,
run_benchmark keyword arguments).  Jobs are pure data so they can cross
process boundaries and be hashed into stable cache keys.

Cache-key contract (see docs/ORCHESTRATOR.md):

``job_key`` = sha256 over the canonical JSON of::

    {"job_schema":    JOB_SCHEMA_VERSION,
     "result_schema": RESULT_SCHEMA_VERSION,
     "benchmark": ..., "system": ..., "seed": ...,
     "scale": ExperimentScale.to_dict(),
     "parameters": canonicalised kwargs,
     "code": code_fingerprint()}          # optional, on by default

Canonical JSON means ``sort_keys=True`` with compact separators, with
dataclass parameter values (``CoprConfig``, ``BlemConfig``, ...) tagged
by class name so distinct config types can never alias.  Including the
code fingerprint means a cache can never serve results computed by a
different version of the simulator.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Dict, Mapping, Optional

from repro.core.blem import BlemConfig
from repro.core.copr import CoprConfig
from repro.obs import ObsConfig
from repro.sim.runner import ExperimentScale, run_benchmark
from repro.sim.simulator import RESULT_SCHEMA_VERSION, SimulationResult

#: Version of the job-spec / cache-key encoding itself.  Bump when the
#: canonicalisation or key layout changes; old cache entries then simply
#: never match.
JOB_SCHEMA_VERSION = 1

#: Parameter dataclasses that may appear as run_benchmark kwargs and are
#: rebuilt by class name on the worker side.
_REHYDRATABLE = {
    "CoprConfig": CoprConfig,
    "BlemConfig": BlemConfig,
    "ExperimentScale": ExperimentScale,
    "ObsConfig": ObsConfig,
}


def canonical(value: Any) -> Any:
    """Reduce *value* to JSON-compatible data with a stable encoding.

    Dataclasses become ``{"__type__": ClassName, ...fields...}``;
    mappings/sequences recurse; anything else must already be a JSON
    scalar.  Raises :class:`TypeError` for values with no stable
    encoding rather than hashing something ambiguous.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        encoded = {
            f.name: canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        encoded["__type__"] = type(value).__name__
        return encoded
    if isinstance(value, Mapping):
        return {str(key): canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"cannot canonicalise {type(value).__name__!r} for a cache key; "
        "use JSON scalars, dataclass configs, mappings or sequences"
    )


def rehydrate(value: Any) -> Any:
    """Inverse of :func:`canonical` for parameter values."""
    if isinstance(value, Mapping):
        if "__type__" in value:
            cls = _REHYDRATABLE.get(value["__type__"])
            if cls is None:
                raise ValueError(
                    f"unknown parameter dataclass {value['__type__']!r}"
                )
            kwargs = {
                key: rehydrate(item)
                for key, item in value.items()
                if key != "__type__"
            }
            return cls(**kwargs)
        return {key: rehydrate(item) for key, item in value.items()}
    if isinstance(value, list):
        return [rehydrate(item) for item in value]
    return value


def stable_key(payload: Mapping[str, Any]) -> str:
    """sha256 hex digest of the canonical JSON encoding of *payload*."""
    encoded = json.dumps(
        canonical(payload), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Content hash of every ``repro`` source file.

    Folding this into cache keys makes a result cache safe across code
    changes: editing any simulator source invalidates every key, so a
    cache can never serve results the current code would not reproduce.
    """
    import repro

    root = pathlib.Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()


@dataclass(frozen=True)
class JobSpec:
    """One grid point, expressed as pure data.

    ``parameters`` are extra keyword arguments for
    :func:`repro.sim.runner.run_benchmark`; dataclass values such as
    :class:`CoprConfig` are allowed and survive the worker boundary.
    """

    benchmark: str
    system: str
    seed: int
    scale: ExperimentScale
    parameters: Mapping[str, object] = field(default_factory=dict)

    def key(self, include_code: bool = True) -> str:
        """The content-addressed cache key for this job."""
        payload: Dict[str, Any] = {
            "job_schema": JOB_SCHEMA_VERSION,
            "result_schema": RESULT_SCHEMA_VERSION,
            "benchmark": self.benchmark,
            "system": self.system,
            "seed": self.seed,
            "scale": self.scale,
            "parameters": dict(self.parameters),
        }
        if include_code:
            payload["code"] = code_fingerprint()
        return stable_key(payload)

    def to_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "system": self.system,
            "seed": self.seed,
            "scale": self.scale.to_dict(),
            "parameters": canonical(dict(self.parameters)),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "JobSpec":
        return cls(
            benchmark=payload["benchmark"],
            system=payload["system"],
            seed=payload["seed"],
            scale=ExperimentScale.from_dict(payload["scale"]),
            parameters=rehydrate(dict(payload["parameters"])),
        )

    def describe(self) -> str:
        extras = ",".join(f"{k}={v}" for k, v in sorted(
            canonical(dict(self.parameters)).items()
        ))
        base = f"{self.benchmark}/{self.system}/seed={self.seed}"
        return f"{base}[{extras}]" if extras else base


def execute_job(spec: JobSpec) -> SimulationResult:
    """Default job runner: one full-timing simulation of the grid point."""
    kwargs = {key: rehydrate(value) for key, value in spec.parameters.items()}
    return run_benchmark(
        spec.benchmark, spec.system, scale=spec.scale, seed=spec.seed,
        **kwargs,
    )


__all__ = [
    "JOB_SCHEMA_VERSION",
    "JobSpec",
    "canonical",
    "code_fingerprint",
    "execute_job",
    "rehydrate",
    "stable_key",
]
