"""Parallel, cached, fault-tolerant experiment orchestration.

The execution layer for sweep grids: job specs hashed into
content-addressed cache keys (:mod:`repro.orchestrator.jobs`), an
on-disk result cache (:mod:`repro.orchestrator.cache`), resumable run
manifests (:mod:`repro.orchestrator.manifest`), structured telemetry
(:mod:`repro.orchestrator.telemetry`) and the worker pool that ties
them together (:mod:`repro.orchestrator.pool`).

See docs/ORCHESTRATOR.md for the cache-key contract, manifest format
and telemetry schema.
"""

from repro.orchestrator.cache import CacheStats, ResultCache
from repro.orchestrator.jobs import (
    JOB_SCHEMA_VERSION,
    JobSpec,
    canonical,
    code_fingerprint,
    execute_job,
    rehydrate,
    stable_key,
)
from repro.orchestrator.manifest import RunManifest
from repro.orchestrator.pool import (
    JobOutcome,
    OrchestrationReport,
    Orchestrator,
    auto_jobs,
)
from repro.orchestrator.telemetry import RunCounters, RunTelemetry
from repro.orchestrator.workers import (
    DEFAULT_RECYCLE_AFTER,
    POOL_MODES,
    WorkerStartupError,
    available_backends,
    backend_factory,
    register_backend,
)

__all__ = [
    "DEFAULT_RECYCLE_AFTER",
    "JOB_SCHEMA_VERSION",
    "POOL_MODES",
    "CacheStats",
    "JobOutcome",
    "JobSpec",
    "OrchestrationReport",
    "Orchestrator",
    "ResultCache",
    "RunCounters",
    "RunManifest",
    "RunTelemetry",
    "WorkerStartupError",
    "auto_jobs",
    "available_backends",
    "backend_factory",
    "canonical",
    "code_fingerprint",
    "execute_job",
    "register_backend",
    "rehydrate",
    "stable_key",
]
