"""Content-addressed on-disk result cache.

Layout: ``<root>/<key[:2]>/<key>.json`` where *key* is the sha256 hex
digest from :meth:`repro.orchestrator.jobs.JobSpec.key`.  Each entry
stores the ``SimulationResult.to_dict()`` payload plus a small metadata
envelope including a sha256 checksum of the result payload.  Writes are
atomic (temp file + rename) so a killed sweep can never leave a
truncated entry; reads never trust the disk — an absent, truncated,
undecodable, schema-mismatched or checksum-failing entry is a miss, a
*corrupt-but-present* entry is additionally unlinked (so it cannot keep
costing a parse per lookup) and counted in
:attr:`CacheStats.corrupt_entries`.  A full disk degrades ``put`` to a
counted no-op (:attr:`CacheStats.put_errors`): the cache is an
optimisation and must never fail a sweep.

Chaos: a bound :class:`repro.chaos.ChaosPlan` (``cache.chaos = plan``)
may tear an entry on disk right before a read (``cache.torn_read``) or
raise ``ENOSPC`` inside a store (``cache.disk_full``) — both exercising
exactly the recovery paths above.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import pathlib
import tempfile
from dataclasses import dataclass
from typing import Dict, Optional

from repro.sim.simulator import SimulationResult


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Present-but-unusable entries found (and unlinked) by ``get``.
    corrupt_entries: int = 0
    #: Stores that failed on the filesystem (disk full, permissions) and
    #: were swallowed — the result still reached the caller.
    put_errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


def _result_checksum(result_payload: Dict[str, object]) -> str:
    """Canonical sha256 over the serialised result payload."""
    return hashlib.sha256(
        json.dumps(result_payload, sort_keys=True).encode("utf-8")
    ).hexdigest()


class ResultCache:
    """Maps job keys to cached :class:`SimulationResult` payloads."""

    def __init__(self, root) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        #: Optional bound :class:`repro.chaos.ChaosPlan` (None = inert).
        self.chaos = None

    def path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[SimulationResult]:
        """The cached result for *key*, or ``None`` on any kind of miss."""
        path = self.path(key)
        if self.chaos is not None and self.chaos.should("cache.torn_read",
                                                        key):
            self._tear(path)
        present = False
        try:
            text = path.read_text(encoding="utf-8")
            present = True
            payload = json.loads(text)
            expected = payload.get("sha256")
            if expected is not None \
                    and expected != _result_checksum(payload["result"]):
                raise ValueError("result checksum mismatch")
            result = SimulationResult.from_dict(payload["result"])
        except OSError:
            # Absent (or unreadable): the ordinary miss.
            self.stats.misses += 1
            return None
        except (ValueError, KeyError, TypeError):
            # Present but truncated, corrupt, checksum-failing or written
            # by another schema: a miss — and the entry is deleted so it
            # cannot keep masquerading as a hit candidate.
            if present:
                self.stats.corrupt_entries += 1
                try:
                    path.unlink()
                except OSError:
                    pass
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, key: str, result: SimulationResult,
            meta: Optional[Dict[str, object]] = None
            ) -> Optional[pathlib.Path]:
        """Store *result* under *key* atomically; returns the entry path.

        Filesystem failures (a full disk first of all) are swallowed and
        counted: a sweep must finish even when its cache cannot grow.
        Returns ``None`` when the store did not land.
        """
        path = self.path(key)
        handle = None
        try:
            if self.chaos is not None and self.chaos.should(
                    "cache.disk_full", key):
                raise OSError(errno.ENOSPC, "no space left on device "
                                            "(chaos)")
            path.parent.mkdir(parents=True, exist_ok=True)
            result_payload = result.to_dict()
            payload = {"key": key, "meta": dict(meta or {}),
                       "sha256": _result_checksum(result_payload),
                       "result": result_payload}
            handle = tempfile.NamedTemporaryFile(
                "w", encoding="utf-8", dir=str(path.parent),
                prefix=f".{key[:8]}.", suffix=".tmp", delete=False,
            )
            with handle:
                json.dump(payload, handle)
            os.replace(handle.name, path)
        except OSError:
            if handle is not None:
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass
            self.stats.put_errors += 1
            return None
        except BaseException:
            if handle is not None:
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass
            raise
        self.stats.stores += 1
        return path

    def _tear(self, path: pathlib.Path) -> None:
        """Chaos helper: truncate an on-disk entry mid-payload."""
        try:
            data = path.read_bytes()
            path.write_bytes(data[: len(data) // 2])
        except OSError:
            pass  # absent entry: nothing to tear

    def __contains__(self, key: str) -> bool:
        return self.path(key).is_file()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))


__all__ = ["CacheStats", "ResultCache"]
