"""Content-addressed on-disk result cache.

Layout: ``<root>/<key[:2]>/<key>.json`` where *key* is the sha256 hex
digest from :meth:`repro.orchestrator.jobs.JobSpec.key`.  Each entry
stores the ``SimulationResult.to_dict()`` payload plus a small metadata
envelope.  Writes are atomic (temp file + rename) so a killed sweep can
never leave a truncated entry; unreadable or schema-mismatched entries
read as misses, never as errors.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.sim.simulator import SimulationResult


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


class ResultCache:
    """Maps job keys to cached :class:`SimulationResult` payloads."""

    def __init__(self, root) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[SimulationResult]:
        """The cached result for *key*, or ``None`` on any kind of miss."""
        path = self.path(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            result = SimulationResult.from_dict(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            # Absent, truncated, corrupt or written by another schema
            # version: all of these are just misses.
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, key: str, result: SimulationResult,
            meta: Optional[Dict[str, object]] = None) -> pathlib.Path:
        """Store *result* under *key* atomically; returns the entry path."""
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"key": key, "meta": dict(meta or {}),
                   "result": result.to_dict()}
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=str(path.parent),
            prefix=f".{key[:8]}.", suffix=".tmp", delete=False,
        )
        try:
            with handle:
                json.dump(payload, handle)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return path

    def __contains__(self, key: str) -> bool:
        return self.path(key).is_file()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))


__all__ = ["CacheStats", "ResultCache"]
