"""Structured per-run telemetry: JSONL records plus a live progress line.

Two audiences, one source of truth:

* machines read ``telemetry.jsonl`` — one ``job`` record per terminal
  job event and one final ``summary`` record (schema in
  docs/ORCHESTRATOR.md);
* humans watch a single self-overwriting progress line on a TTY (plain
  newline-separated lines when piped, so CI logs stay readable).

Clocks: every duration (``elapsed``, ``busy_seconds``, per-record ``t``)
is measured on ``time.monotonic()``, so NTP steps or a suspended laptop
can't skew utilization math or the progress line.  The ``begin`` and
``summary`` records additionally carry an epoch ``ts`` (``time.time()``)
so readers can place the run on the calendar; nothing is computed from
those wall-clock stamps.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TextIO


@dataclass
class RunCounters:
    """Live job-state counts for one orchestrated run."""

    total: int = 0
    running: int = 0
    done: int = 0
    failed: int = 0
    cached: int = 0
    #: Seconds of worker time actually spent simulating (sum over
    #: attempts), the numerator of worker utilization.
    busy_seconds: float = 0.0
    wall_seconds_per_point: List[float] = field(default_factory=list)

    @property
    def finished(self) -> int:
        return self.done + self.failed + self.cached

    @property
    def queued(self) -> int:
        return max(0, self.total - self.finished - self.running)

    @property
    def cache_hit_rate(self) -> float:
        if not self.finished:
            return 0.0
        return self.cached / self.finished

    def utilization(self, elapsed_s: float, workers: int) -> float:
        if elapsed_s <= 0 or workers <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / (elapsed_s * workers))


class RunTelemetry:
    """Accumulates counters, writes JSONL, renders the progress line."""

    def __init__(
        self,
        path=None,
        progress: bool = False,
        stream: Optional[TextIO] = None,
        workers: int = 1,
        clock=time.monotonic,
        backend: Optional[str] = None,
        jobs_requested=None,
    ) -> None:
        self._path = path
        self._progress = progress
        self._stream = stream if stream is not None else sys.stderr
        self._workers = workers
        self._backend = backend
        #: The caller's pre-resolution worker request (e.g. ``"auto"``);
        #: ``workers`` is the resolved count.
        self._jobs_requested = jobs_requested
        self._clock = clock
        self._start = clock()
        self.counters = RunCounters()
        self._used_cr = False
        self._notes: List[str] = []
        self._degraded_to: Optional[str] = None
        if path is not None:
            # Truncate per orchestrator invocation: a resume's telemetry
            # describes that resume, the manifest holds full history.
            open(path, "w", encoding="utf-8").close()

    # -- lifecycle ------------------------------------------------------

    def begin(self, total_jobs: int) -> None:
        self.counters.total = total_jobs
        self._emit({
            "event": "begin",
            "total": total_jobs,
            "ts": round(time.time(), 6),
        })
        self._render_progress()

    def job_started(self) -> None:
        self.counters.running += 1
        self._render_progress()

    def job_retried(self, key: str, label: str, attempt: int,
                    error: str, wall_s: float) -> None:
        """One attempt failed and the job went back to the queue."""
        self.counters.running -= 1
        self.counters.busy_seconds += wall_s
        self._emit({
            "event": "attempt",
            "t": round(self.elapsed(), 6),
            "key": key,
            "job": label,
            "attempt": attempt,
            "error": error,
            "wall_s": round(wall_s, 6),
        })
        self._render_progress()

    def job_finished(
        self,
        key: str,
        label: str,
        status: str,
        attempts: int,
        wall_s: float,
        was_running: bool,
        error: Optional[str] = None,
        obs: Optional[Dict[str, object]] = None,
        agent: Optional[str] = None,
    ) -> None:
        """Record one terminal job event (done / failed / cached).

        ``obs`` is the job's :meth:`repro.obs.ObsRecord.summary` when the
        run was observed; it rides along in the JSONL record untouched.
        ``agent`` names the cluster agent that executed the point; local
        backends leave it None and the record unchanged.
        """
        if was_running:
            self.counters.running -= 1
        if status == "done":
            self.counters.done += 1
        elif status == "failed":
            self.counters.failed += 1
        else:
            self.counters.cached += 1
        self.counters.busy_seconds += wall_s
        if status == "done":
            self.counters.wall_seconds_per_point.append(wall_s)
        record = {
            "event": "job",
            "t": round(self.elapsed(), 6),
            "key": key,
            "job": label,
            "status": status,
            "attempts": attempts,
            "wall_s": round(wall_s, 6),
        }
        if error:
            record["error"] = error
        if obs is not None:
            record["obs"] = obs
        if agent is not None:
            record["agent"] = agent
        self._emit(record)
        self._render_progress()

    def note(self, text: str) -> None:
        """Attach one recovery/warning note to the final summary record."""
        self._notes.append(text)

    def job_requeued(self, key: str, label: str, attempt: int,
                     reason: str, wall_s: float) -> None:
        """One attempt was lost to infrastructure (not the job) and went
        back to the queue without consuming its retry budget."""
        self.counters.running -= 1
        self.counters.busy_seconds += wall_s
        self._emit({
            "event": "attempt",
            "t": round(self.elapsed(), 6),
            "key": key,
            "job": label,
            "attempt": attempt,
            "requeued": True,
            "error": reason,
            "wall_s": round(wall_s, 6),
        })
        self._render_progress()

    def degraded(self, to_backend: str, reason: str) -> None:
        """The run fell back to *to_backend* mid-sweep (and continued).

        Emits a ``degraded_to_local`` event record immediately and flags
        the final summary — a completed-but-degraded sweep must be
        distinguishable from a healthy one.
        """
        self._degraded_to = to_backend
        self._emit({
            "event": "degraded_to_local",
            "t": round(self.elapsed(), 6),
            "to": to_backend,
            "reason": reason,
        })
        self.note(f"degraded to {to_backend} backend: {reason}")

    def summary(self, aborted: bool = False) -> Dict[str, object]:
        """Emit and return the final run summary record.

        ``aborted=True`` marks a summary flushed on the way out of an
        interrupted run (KeyboardInterrupt, SIGTERM-raised exception):
        the counters then describe how far the run got, not a completed
        sweep, and readers of ``telemetry.jsonl`` can tell the two apart.
        """
        from repro import fastpath, kernels

        counters = self.counters
        elapsed = self.elapsed()
        walls = counters.wall_seconds_per_point
        record: Dict[str, object] = {
            "event": "summary",
            "ts": round(time.time(), 6),
            "aborted": aborted,
            # Effective acceleration flags (REPRO_FASTPATH/REPRO_VECTOR)
            # at summary time — results are bit-identical either way,
            # but wall clocks and throughput numbers are only comparable
            # between runs that agree on these.
            "fastpath": fastpath.enabled(),
            "vector": kernels.enabled(),
            "total": counters.total,
            "done": counters.done,
            "failed": counters.failed,
            "cached": counters.cached,
            "elapsed_s": round(elapsed, 6),
            "cache_hit_rate": round(counters.cache_hit_rate, 6),
            "worker_utilization": round(
                counters.utilization(elapsed, self._workers), 6
            ),
            "workers": self._workers,
            "mean_point_wall_s": (
                round(sum(walls) / len(walls), 6) if walls else 0.0
            ),
            "max_point_wall_s": round(max(walls), 6) if walls else 0.0,
        }
        if self._backend is not None:
            record["backend"] = self._backend
        if self._jobs_requested is not None:
            record["jobs_requested"] = self._jobs_requested
        if self._degraded_to is not None:
            record["degraded_to_local"] = True
            record["degraded_to"] = self._degraded_to
        if self._notes:
            record["notes"] = list(self._notes)
        self._emit(record)
        if self._progress and self._used_cr:
            self._stream.write("\n")
            self._stream.flush()
        return record

    def elapsed(self) -> float:
        return self._clock() - self._start

    # -- output ---------------------------------------------------------

    def _emit(self, record: Dict[str, object]) -> None:
        if self._path is None:
            return
        with open(self._path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    def _render_progress(self) -> None:
        if not self._progress:
            return
        c = self.counters
        line = (
            f"[orchestrator] {c.finished}/{c.total} finished "
            f"({c.done} run, {c.cached} cached, {c.failed} failed) "
            f"| {c.running} running, {c.queued} queued "
            f"| {self.elapsed():.1f}s"
        )
        if self._stream.isatty():
            self._stream.write("\r\x1b[2K" + line)
            self._used_cr = True
        else:
            self._stream.write(line + "\n")
        self._stream.flush()


__all__ = ["RunCounters", "RunTelemetry"]
