"""Incremental figure regeneration over the shared result cache.

``pytest benchmarks/`` regenerates every figure table unconditionally.
This module is the ROADMAP's "incremental figure regeneration" item: it
knows which simulation points each figure table consumes, keys them with
the orchestrator's content-addressed scheme
(:func:`repro.orchestrator.stable_key` over the job spec plus
:func:`repro.orchestrator.code_fingerprint`), and regenerates only the
tables whose point-key set changed since the table was last written —
i.e. after a code edit, a scale change, or a first run.  Simulated
points land in the same on-disk :class:`repro.orchestrator.ResultCache`
layout the benches use (``REPRO_BENCH_CACHE_DIR``), so a bench run warms
``repro figures`` and vice versa.

Keys are content-addressed by (spec, code): results are deterministic,
so "the underlying cached points changed" is exactly "the key set
changed".  A state file next to the tables maps each figure to the
digest of its key set.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.charts import bar_chart
from repro.analysis.report import format_table, geometric_mean
from repro.core.blem import BlemConfig
from repro.orchestrator import ResultCache, code_fingerprint, stable_key
from repro.sim.runner import ExperimentScale, run_benchmark
from repro.sim.simulator import SimulationResult
from repro.workloads.profiles import all_benchmark_names

__all__ = [
    "FIGURES",
    "FigureSpec",
    "FigureStatus",
    "figure_scale",
    "plan",
    "regenerate",
]

#: Name of the per-directory freshness state file.
STATE_FILE = ".figures_state.json"

_SEED = 2018
_ALL_SYSTEMS = ("baseline", "metadata_cache", "attache", "ideal")

#: Sweep results keyed results[workload][system].
Sweep = Dict[str, Dict[str, SimulationResult]]


def figure_scale(preset: str = "tiny") -> ExperimentScale:
    """The simulation scale behind each figure point.

    Mirrors the ``REPRO_BENCH_SCALE`` presets of ``benchmarks/conftest``
    exactly — same scales produce the same cache keys, which is what
    lets a bench run and ``repro figures`` share cached points.
    """
    if preset == "tiny":
        return ExperimentScale(
            name="tiny", factor=64, cores=8, records_per_core=600,
        )
    if preset == "fast":
        return ExperimentScale(
            name="fast", factor=32, cores=8, records_per_core=2000,
        )
    if preset == "full":
        return ExperimentScale(
            name="full", factor=8, cores=8, records_per_core=8000,
        )
    raise ValueError(f"unknown scale preset: {preset!r}")


@dataclass(frozen=True)
class FigureSpec:
    """One regenerable figure table.

    Attributes:
        name: output stem (``<out_dir>/<name>.txt``), matching the
            bench suite's ``publish`` names.
        title: human-readable description for ``repro figures --list``.
        systems: the systems each workload must be simulated under.
        render: sweep results -> table text.
    """

    name: str
    title: str
    systems: Tuple[str, ...]
    render: Callable[[Sweep], str]

    def points(self, scale: ExperimentScale) -> List[Tuple[str, str, str]]:
        """The ``(workload, system, cache key)`` points this figure
        consumes, in deterministic order."""
        return [
            (workload, system, _point_key(workload, system, scale))
            for workload in all_benchmark_names()
            for system in self.systems
        ]


def _point_key(workload: str, system: str, scale: ExperimentScale) -> str:
    # The exact payload benchmarks/conftest.ResultsCache uses, so the
    # on-disk entries are interchangeable between the two consumers.
    return stable_key({
        "kind": "bench",
        "workload": workload,
        "system": system,
        "copr_config": None,
        "blem_config": BlemConfig(),
        "seed": _SEED,
        "scale": scale,
        "code": code_fingerprint(),
    })


def _render_speedup(sweep: Sweep) -> str:
    rows = []
    for name in all_benchmark_names():
        base = sweep[name]["baseline"].runtime_core_cycles
        rows.append([
            name,
            base / sweep[name]["metadata_cache"].runtime_core_cycles,
            base / sweep[name]["attache"].runtime_core_cycles,
            base / sweep[name]["ideal"].runtime_core_cycles,
        ])
    rows.append([
        "GEOMEAN",
        geometric_mean([r[1] for r in rows]),
        geometric_mean([r[2] for r in rows]),
        geometric_mean([r[3] for r in rows]),
    ])
    table = format_table(
        ["benchmark", "metadata-cache", "attache", "ideal"],
        rows,
        title="Figure 12: Speedup over no-compression baseline",
    )
    return table + "\n\n" + bar_chart(
        [r[0] for r in rows], [r[2] for r in rows],
        title="Attaché speedup (| marks 1.0 = baseline)",
        baseline=1.0, unit="x",
    )


def _render_energy(sweep: Sweep) -> str:
    rows = []
    for name in all_benchmark_names():
        base = sweep[name]["baseline"].energy.total_nj
        rows.append([
            name,
            sweep[name]["metadata_cache"].energy.total_nj / base,
            sweep[name]["attache"].energy.total_nj / base,
            sweep[name]["ideal"].energy.total_nj / base,
        ])
    rows.append([
        "GEOMEAN",
        geometric_mean([r[1] for r in rows]),
        geometric_mean([r[2] for r in rows]),
        geometric_mean([r[3] for r in rows]),
    ])
    return format_table(
        ["benchmark", "metadata-cache", "attache", "ideal"],
        rows,
        title="Figure 13: Memory-system energy vs no-compression baseline",
    )


def _render_bandwidth_latency(sweep: Sweep) -> str:
    def line_throughput(result: SimulationResult) -> float:
        reads = result.memory_requests_by_kind.get("demand_read", 0)
        writes = result.memory_requests_by_kind.get("demand_write", 0)
        return 1000.0 * (reads + writes) / result.runtime_bus_cycles

    rows = []
    for name in all_benchmark_names():
        base = sweep[name]["baseline"]
        attache = sweep[name]["attache"]
        rows.append([
            name,
            line_throughput(attache) / line_throughput(base),
            attache.mean_read_latency_bus_cycles
            / base.mean_read_latency_bus_cycles,
        ])
    rows.append([
        "GEOMEAN",
        geometric_mean([r[1] for r in rows]),
        geometric_mean([r[2] for r in rows]),
    ])
    return format_table(
        ["benchmark", "line bandwidth vs baseline",
         "mean read latency vs baseline"],
        rows,
        title="Figure 14: Attaché bandwidth improvement and latency "
              "reduction",
    )


FIGURES: Tuple[FigureSpec, ...] = (
    FigureSpec(
        name="fig12_speedup",
        title="speedup over no-compression baseline",
        systems=_ALL_SYSTEMS,
        render=_render_speedup,
    ),
    FigureSpec(
        name="fig13_energy",
        title="memory-system energy vs baseline",
        systems=_ALL_SYSTEMS,
        render=_render_energy,
    ),
    FigureSpec(
        name="fig14_bandwidth_latency",
        title="bandwidth improvement and latency reduction",
        systems=("baseline", "attache"),
        render=_render_bandwidth_latency,
    ),
)


@dataclass
class FigureStatus:
    """Freshness of one figure against the state file."""

    spec: FigureSpec
    digest: str  #: digest of the figure's current point-key set
    fresh: bool  #: table exists and was rendered from this key set
    cached_points: int  #: points already present in the result cache
    total_points: int

    @property
    def missing_points(self) -> int:
        return self.total_points - self.cached_points


def _state_path(out_dir: pathlib.Path) -> pathlib.Path:
    return out_dir / STATE_FILE


def _load_state(out_dir: pathlib.Path) -> Dict[str, str]:
    try:
        state = json.loads(_state_path(out_dir).read_text(encoding="utf-8"))
        return {str(k): str(v) for k, v in state.items()}
    except (OSError, ValueError, AttributeError):
        return {}


def _keyset_digest(keys: Sequence[str]) -> str:
    return hashlib.sha256("".join(keys).encode("ascii")).hexdigest()


def plan(
    cache: ResultCache,
    out_dir: pathlib.Path,
    scale: ExperimentScale,
    only: Optional[Sequence[str]] = None,
) -> List[FigureStatus]:
    """Freshness of every (selected) figure, without simulating."""
    names = set(only) if only else None
    if names:
        known = {spec.name for spec in FIGURES}
        unknown = names - known
        if unknown:
            raise ValueError(
                f"unknown figure(s): {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(known))})"
            )
    state = _load_state(out_dir)
    statuses = []
    for spec in FIGURES:
        if names and spec.name not in names:
            continue
        points = spec.points(scale)
        digest = _keyset_digest([key for __, __, key in points])
        fresh = (
            state.get(spec.name) == digest
            and (out_dir / f"{spec.name}.txt").exists()
        )
        cached = sum(1 for __, __, key in points if cache.path(key).exists())
        statuses.append(FigureStatus(
            spec=spec, digest=digest, fresh=fresh,
            cached_points=cached, total_points=len(points),
        ))
    return statuses


def regenerate(
    cache: ResultCache,
    out_dir: pathlib.Path,
    scale: ExperimentScale,
    only: Optional[Sequence[str]] = None,
    force: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> List[Tuple[FigureStatus, str]]:
    """Regenerate stale figures; returns ``(status, action)`` per figure.

    *action* is ``"fresh"`` (skipped — key set unchanged and the table
    exists), or ``"rebuilt"``.  Missing points are simulated and stored
    in *cache*; points shared between figures simulate once.
    """
    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    out_dir.mkdir(parents=True, exist_ok=True)
    statuses = plan(cache, out_dir, scale, only=only)
    state = _load_state(out_dir)
    results: Dict[str, SimulationResult] = {}
    outcome = []
    for status in statuses:
        spec = status.spec
        if status.fresh and not force:
            say(f"{spec.name}: fresh (key set unchanged), skipping")
            outcome.append((status, "fresh"))
            continue
        sweep: Sweep = {}
        for workload, system, key in spec.points(scale):
            result = results.get(key)
            if result is None:
                result = cache.get(key)
            if result is None:
                say(f"{spec.name}: simulating {workload}/{system}")
                result = run_benchmark(
                    workload, system, scale=scale, seed=_SEED,
                )
                cache.put(key, result,
                          meta={"workload": workload, "system": system})
            results[key] = result
            sweep.setdefault(workload, {})[system] = result
        table = spec.render(sweep)
        (out_dir / f"{spec.name}.txt").write_text(
            table + "\n", encoding="utf-8"
        )
        state[spec.name] = status.digest
        _state_path(out_dir).write_text(
            json.dumps(state, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        say(f"{spec.name}: rebuilt ({status.total_points} points, "
            f"{status.cached_points} cached)")
        outcome.append((status, "rebuilt"))
    return outcome
