"""Analytics and reporting: CID collision math and result tables."""

from repro.analysis.charts import bar_chart, grouped_bar_chart
from repro.analysis.collision import (
    cid_collision_probability,
    cid_table,
    expected_accesses_per_collision,
    measure_collision_rate,
    probability_of_collision_within,
)
from repro.analysis.report import format_table, geometric_mean, normalise

__all__ = [
    "bar_chart",
    "cid_collision_probability",
    "cid_table",
    "expected_accesses_per_collision",
    "format_table",
    "geometric_mean",
    "grouped_bar_chart",
    "measure_collision_rate",
    "normalise",
    "probability_of_collision_within",
]
