"""Plain-text result tables for the benchmark harness.

Every bench prints the rows/series of its paper figure through these
helpers so outputs are uniform and easy to diff against EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; the conventional average for speedup ratios.

    An empty sequence returns 0.0 (a report over zero benchmarks has no
    aggregate; callers render it as absent rather than crash a whole
    sweep summary).  Non-positive values still raise: a zero or negative
    speedup is always an upstream bug, and silently dropping it would
    skew the mean.
    """
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def normalise(values: Dict[str, float], baseline_key: str) -> Dict[str, float]:
    """Divide every value by the baseline entry."""
    base = values[baseline_key]
    if base == 0:
        raise ValueError(f"baseline {baseline_key!r} is zero")
    return {key: value / base for key, value in values.items()}


def format_table(
    headers: List[str],
    rows: List[List[object]],
    title: str = "",
    float_format: str = "{:.3f}",
) -> str:
    """Render an aligned plain-text table."""
    rendered: List[List[str]] = []
    for row in rows:
        rendered.append(
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
