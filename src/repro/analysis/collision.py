"""CID-collision analytics (paper Table I and Figure 8).

After scrambling, every uncompressed line's top bits are uniform random,
so the per-access collision probability for a *b*-bit CID is exactly
2^-b.  These helpers compute the analytic curves the paper plots and
measure the empirical rate through the real BLEM + scrambler stack as a
cross-check.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.compression import CompressionEngine
from repro.core.blem import BlemConfig, BlemEngine
from repro.scramble import DataScrambler
from repro.util.rng import DeterministicRng


def cid_collision_probability(cid_bits: int) -> float:
    """Per-access probability that an uncompressed line matches the CID."""
    if cid_bits <= 0:
        raise ValueError("cid_bits must be positive")
    return 2.0 ** -cid_bits


def expected_accesses_per_collision(cid_bits: int) -> float:
    """Mean number of uncompressed accesses between collisions (32 K for
    the paper's 15-bit CID)."""
    return 2.0 ** cid_bits


def probability_of_collision_within(cid_bits: int, accesses: int) -> float:
    """P(at least one collision in *accesses* uncompressed accesses) —
    the curve of Figure 8."""
    if accesses < 0:
        raise ValueError("accesses must be non-negative")
    per_access = cid_collision_probability(cid_bits)
    return 1.0 - (1.0 - per_access) ** accesses


def cid_table(header_bits: int = 16) -> List[Dict[str, float]]:
    """Reproduce Table I: CID size vs info bits vs collision probability.

    The header budget is 16 bits (2 bytes of a 32-byte sub-rank beat);
    one bit is always the XID, the rest split between CID and extra
    information bits.
    """
    rows = []
    for cid_bits in (15, 14, 13):
        info_bits = header_bits - 1 - cid_bits
        rows.append(
            {
                "cid_bits": cid_bits,
                "info_bits": info_bits,
                "collision_probability": cid_collision_probability(cid_bits),
            }
        )
    return rows


def measure_collision_rate(
    cid_bits: int,
    trials: int,
    seed: int = 7,
    info_bits: int = 0,
) -> Tuple[int, float]:
    """Empirically measure the CID collision rate through BLEM.

    Writes *trials* incompressible lines (random content, distinct
    addresses) through a real BLEM engine and counts write collisions.
    Returns ``(collisions, rate)``.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    from repro.compression.bdi import BdiCompressor

    engine = CompressionEngine(
        algorithms=[BdiCompressor()] if info_bits == 0 else None,
        cache_entries=0,
    )
    blem = BlemEngine(
        engine,
        DataScrambler(seed),
        BlemConfig(cid_bits=cid_bits, info_bits=info_bits),
        boot_seed=seed ^ 0xB007,
    )
    rng = DeterministicRng(seed ^ 0xDA7A)
    collisions = 0
    written = 0
    while written < trials:
        data = rng.next_bytes(64)
        if engine.is_compressible(data):
            continue  # keep the sample purely uncompressed
        stored, __ = blem.encode_write(written * 64, data, 0)
        if stored.collision:
            collisions += 1
        written += 1
    return collisions, collisions / trials
