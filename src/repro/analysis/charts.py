"""ASCII bar charts for figure benches.

The paper's figures are bar charts per benchmark; the bench harness
renders equivalent ASCII charts alongside the numeric tables so the
*shape* can be eyeballed in a terminal or a text diff, without plotting
dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    width: int = 50,
    unit: str = "",
    baseline: Optional[float] = None,
) -> str:
    """Render one horizontal bar per (label, value).

    When *baseline* is given, a ``|`` marker is drawn at its position —
    used for "1.0 = no speedup" reference lines.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        raise ValueError("chart needs at least one bar")
    if width < 10:
        raise ValueError("width too small to render")
    peak = max(list(values) + ([baseline] if baseline is not None else []))
    if peak <= 0:
        raise ValueError("chart values must include something positive")
    label_width = max(len(label) for label in labels)
    scale = (width - 1) / peak

    lines: List[str] = []
    if title:
        lines.append(title)
    marker = int(round(baseline * scale)) if baseline is not None else None
    for label, value in zip(labels, values):
        length = max(0, int(round(value * scale)))
        bar = list("#" * length + " " * (width - length))
        if marker is not None and 0 <= marker < width:
            bar[marker] = "|" if bar[marker] == " " else "+"
        lines.append(
            f"{label.ljust(label_width)}  {''.join(bar)}  {value:.3f}{unit}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    labels: Sequence[str],
    series: Dict[str, Sequence[float]],
    title: str = "",
    width: int = 40,
    baseline: Optional[float] = None,
) -> str:
    """Render several series per label (one row per series, grouped)."""
    if not series:
        raise ValueError("at least one series is required")
    for name, values in series.items():
        if len(values) != len(labels):
            raise ValueError(f"series {name!r} length mismatch")
    series_width = max(len(name) for name in series)
    blocks: List[str] = [title] if title else []
    for index, label in enumerate(labels):
        chart = bar_chart(
            labels=[name.ljust(series_width) for name in series],
            values=[series[name][index] for name in series],
            width=width,
            baseline=baseline,
        )
        blocks.append(label)
        blocks.extend("  " + line for line in chart.splitlines())
    return "\n".join(blocks)
