"""Command-line interface: run simulations without writing Python.

Usage::

    python -m repro list
    python -m repro run --benchmark mcf --system attache
    python -m repro compare --benchmark STREAM --records 2000
    python -m repro functional --benchmark bc.kron --copr --mdcache

All runs are deterministic for a given ``--seed``.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.analysis import format_table
from repro.core.controllers import DEFAULT_METADATA_BASE
from repro.core.metadata_cache import MetadataCache
from repro.sim.functional import run_functional
from repro.sim.runner import (
    SYSTEMS,
    ExperimentScale,
    run_benchmark,
    run_comparison,
)
from repro.workloads.profiles import PROFILES, all_benchmark_names


def _scale_from_args(args: argparse.Namespace) -> ExperimentScale:
    return ExperimentScale(
        name="cli",
        factor=args.scale_factor,
        cores=args.cores,
        records_per_core=args.records,
        warmup_per_core=args.warmup,
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--benchmark", default="mcf",
                        help="benchmark or mix name (see `list`)")
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument("--cores", type=int, default=8)
    parser.add_argument("--records", type=int, default=2000,
                        help="timed memory operations per core")
    parser.add_argument("--warmup", type=int, default=None,
                        help="warm-up records per core (default 2x records)")
    parser.add_argument("--scale-factor", type=int, default=32,
                        help="joint capacity/footprint scale divisor")


def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for name in all_benchmark_names(include_mixes=False):
        profile = PROFILES[name]
        rows.append(
            [name, profile.suite, profile.pattern_kind,
             f"{100 * profile.data.compressible_fraction:.0f}%",
             f"{profile.footprint_bytes // 1024**2} MB"]
        )
    rows.append(["mix1 / mix2", "mix", "8-way mixes", "-", "-"])
    print(format_table(
        ["benchmark", "suite", "pattern", "compressible", "footprint/core"],
        rows, title="Available workloads",
    ))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    result = run_benchmark(
        args.benchmark, args.system, scale=_scale_from_args(args),
        seed=args.seed,
    )
    rows = [
        ["runtime (core cycles)", f"{result.runtime_core_cycles:.0f}"],
        ["IPC", f"{result.ipc:.3f}"],
        ["LLC MPKI", f"{result.mpki:.1f}"],
        ["mean read latency (bus cycles)",
         f"{result.mean_read_latency_bus_cycles:.1f}"],
        ["bytes transferred", str(result.bytes_transferred)],
        ["energy (uJ)", f"{result.energy.total_nj / 1000:.1f}"],
    ]
    if result.copr_accuracy is not None:
        rows.append(["COPR accuracy", f"{100 * result.copr_accuracy:.1f}%"])
    if result.metadata_hit_rate is not None:
        rows.append(["metadata-cache hit rate",
                     f"{100 * result.metadata_hit_rate:.1f}%"])
    for kind, count in sorted(result.memory_requests_by_kind.items()):
        rows.append([f"requests: {kind}", str(count)])
    print(format_table(["metric", "value"], rows,
                       title=f"{args.benchmark} on {args.system}"))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    outcome = run_comparison(
        args.benchmark, systems=list(args.systems),
        scale=_scale_from_args(args), seed=args.seed,
    )
    rows = []
    for system in args.systems:
        result = outcome.results[system]
        rows.append(
            [system, outcome.speedup(system), outcome.energy_ratio(system),
             result.mean_read_latency_bus_cycles]
        )
    print(format_table(
        ["system", "speedup", "energy vs baseline", "read latency (cycles)"],
        rows, title=f"{args.benchmark}: system comparison",
    ))
    return 0


def _cmd_functional(args: argparse.Namespace) -> int:
    from repro.core.copr import CoprConfig

    cache = (
        MetadataCache(capacity_bytes=args.mdcache_kb * 1024,
                      metadata_base=DEFAULT_METADATA_BASE)
        if args.mdcache
        else None
    )
    copr_config = (
        CoprConfig(papr_entries=max(1024, 65536 // args.scale_factor),
                   lipr_entries=max(256, 16384 // args.scale_factor))
        if args.copr
        else None
    )
    run = run_functional(
        args.benchmark, cores=args.cores, records_per_core=args.records,
        seed=args.seed, footprint_scale=1.0 / args.scale_factor,
        llc_bytes=max(64 * 1024, 8 * 1024 * 1024 // args.scale_factor),
        metadata_cache=cache, copr_config=copr_config,
    )
    rows = [
        ["demand reads", str(run.demand_reads)],
        ["demand writes", str(run.demand_writes)],
        ["compressible reads", f"{100 * run.compressible_fraction:.1f}%"],
    ]
    if run.metadata_hit_rate is not None:
        rows.append(["metadata hit rate", f"{100 * run.metadata_hit_rate:.1f}%"])
        rows.append(["metadata traffic overhead",
                     f"{100 * run.metadata_traffic_overhead:.1f}%"])
    if run.copr_accuracy is not None:
        rows.append(["COPR accuracy", f"{100 * run.copr_accuracy:.1f}%"])
    print(format_table(["metric", "value"], rows,
                       title=f"{args.benchmark}: functional pass"))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sim.sweep import run_sweep

    sweep = run_sweep(
        benchmarks=list(args.benchmarks),
        systems=list(args.systems),
        seeds=[args.seed],
        scale=_scale_from_args(args),
    )
    csv_text = sweep.to_csv(metrics=list(args.metrics))
    if args.output == "-":
        print(csv_text, end="")
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(csv_text)
        print(f"wrote {len(sweep.points)} rows to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Attaché (MICRO 2018) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list available workloads")

    run_parser = commands.add_parser("run", help="simulate one system")
    _add_common(run_parser)
    run_parser.add_argument("--system", choices=SYSTEMS, default="attache")

    compare_parser = commands.add_parser(
        "compare", help="simulate several systems on one workload"
    )
    _add_common(compare_parser)
    compare_parser.add_argument(
        "--systems", nargs="+", choices=SYSTEMS, default=list(SYSTEMS)
    )

    functional_parser = commands.add_parser(
        "functional", help="timing-free predictor / metadata-cache study"
    )
    _add_common(functional_parser)
    functional_parser.add_argument("--mdcache", action="store_true",
                                   help="measure a metadata cache")
    functional_parser.add_argument("--mdcache-kb", type=int, default=32)
    functional_parser.add_argument("--copr", action="store_true",
                                   help="measure the COPR predictor")

    sweep_parser = commands.add_parser(
        "sweep", help="run a benchmark x system grid, export CSV"
    )
    _add_common(sweep_parser)
    sweep_parser.add_argument("--benchmarks", nargs="+", default=["STREAM"])
    sweep_parser.add_argument(
        "--systems", nargs="+", choices=SYSTEMS, default=["baseline", "attache"]
    )
    sweep_parser.add_argument(
        "--metrics", nargs="+",
        default=["runtime_core_cycles", "ipc", "energy_nj"],
    )
    sweep_parser.add_argument("--output", default="-",
                              help="CSV path, or '-' for stdout")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "compare": _cmd_compare,
        "functional": _cmd_functional,
        "sweep": _cmd_sweep,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
