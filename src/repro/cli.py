"""Command-line interface: run simulations without writing Python.

Usage::

    python -m repro list
    python -m repro run --benchmark mcf --system attache
    python -m repro compare --benchmark STREAM --records 2000
    python -m repro functional --benchmark bc.kron --copr --mdcache

All runs are deterministic for a given ``--seed``.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.analysis import format_table
from repro.core.controllers import DEFAULT_METADATA_BASE
from repro.core.metadata_cache import MetadataCache
from repro.sim.functional import run_functional
from repro.sim.runner import (
    SYSTEMS,
    ExperimentScale,
    run_benchmark,
    run_comparison,
)
from repro.workloads.profiles import PROFILES, all_benchmark_names


def _scale_from_args(args: argparse.Namespace) -> ExperimentScale:
    return ExperimentScale(
        name="cli",
        factor=args.scale_factor,
        cores=args.cores,
        records_per_core=args.records,
        warmup_per_core=args.warmup,
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--benchmark", default="mcf",
                        help="benchmark or mix name (see `list`)")
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument("--cores", type=int, default=8)
    parser.add_argument("--records", type=int, default=2000,
                        help="timed memory operations per core")
    parser.add_argument("--warmup", type=int, default=None,
                        help="warm-up records per core (default 2x records)")
    parser.add_argument("--scale-factor", type=int, default=32,
                        help="joint capacity/footprint scale divisor")


def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for name in all_benchmark_names(include_mixes=False):
        profile = PROFILES[name]
        rows.append(
            [name, profile.suite, profile.pattern_kind,
             f"{100 * profile.data.compressible_fraction:.0f}%",
             f"{profile.footprint_bytes // 1024**2} MB"]
        )
    rows.append(["mix1 / mix2", "mix", "8-way mixes", "-", "-"])
    print(format_table(
        ["benchmark", "suite", "pattern", "compressible", "footprint/core"],
        rows, title="Available workloads",
    ))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    result = run_benchmark(
        args.benchmark, args.system, scale=_scale_from_args(args),
        seed=args.seed,
    )
    rows = [
        ["runtime (core cycles)", f"{result.runtime_core_cycles:.0f}"],
        ["IPC", f"{result.ipc:.3f}"],
        ["LLC MPKI", f"{result.mpki:.1f}"],
        ["mean read latency (bus cycles)",
         f"{result.mean_read_latency_bus_cycles:.1f}"],
        ["bytes transferred", str(result.bytes_transferred)],
        ["energy (uJ)", f"{result.energy.total_nj / 1000:.1f}"],
    ]
    if result.copr_accuracy is not None:
        rows.append(["COPR accuracy", f"{100 * result.copr_accuracy:.1f}%"])
    if result.metadata_hit_rate is not None:
        rows.append(["metadata-cache hit rate",
                     f"{100 * result.metadata_hit_rate:.1f}%"])
    for kind, count in sorted(result.memory_requests_by_kind.items()):
        rows.append([f"requests: {kind}", str(count)])
    print(format_table(["metric", "value"], rows,
                       title=f"{args.benchmark} on {args.system}"))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    outcome = run_comparison(
        args.benchmark, systems=list(args.systems),
        scale=_scale_from_args(args), seed=args.seed,
    )
    rows = []
    for system in args.systems:
        result = outcome.results[system]
        rows.append(
            [system, outcome.speedup(system), outcome.energy_ratio(system),
             result.mean_read_latency_bus_cycles]
        )
    print(format_table(
        ["system", "speedup", "energy vs baseline", "read latency (cycles)"],
        rows, title=f"{args.benchmark}: system comparison",
    ))
    return 0


def _cmd_functional(args: argparse.Namespace) -> int:
    from repro.core.copr import CoprConfig

    cache = (
        MetadataCache(capacity_bytes=args.mdcache_kb * 1024,
                      metadata_base=DEFAULT_METADATA_BASE)
        if args.mdcache
        else None
    )
    copr_config = (
        CoprConfig(papr_entries=max(1024, 65536 // args.scale_factor),
                   lipr_entries=max(256, 16384 // args.scale_factor))
        if args.copr
        else None
    )
    run = run_functional(
        args.benchmark, cores=args.cores, records_per_core=args.records,
        seed=args.seed, footprint_scale=1.0 / args.scale_factor,
        llc_bytes=max(64 * 1024, 8 * 1024 * 1024 // args.scale_factor),
        metadata_cache=cache, copr_config=copr_config,
    )
    rows = [
        ["demand reads", str(run.demand_reads)],
        ["demand writes", str(run.demand_writes)],
        ["compressible reads", f"{100 * run.compressible_fraction:.1f}%"],
    ]
    if run.metadata_hit_rate is not None:
        rows.append(["metadata hit rate", f"{100 * run.metadata_hit_rate:.1f}%"])
        rows.append(["metadata traffic overhead",
                     f"{100 * run.metadata_traffic_overhead:.1f}%"])
    if run.copr_accuracy is not None:
        rows.append(["COPR accuracy", f"{100 * run.copr_accuracy:.1f}%"])
    print(format_table(["metric", "value"], rows,
                       title=f"{args.benchmark}: functional pass"))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    """Regenerate only the figure tables whose cached points changed."""
    import os
    import pathlib

    from repro.analysis.figures import figure_scale, plan, regenerate
    from repro.orchestrator import ResultCache

    cache_dir = args.cache_dir or os.environ.get(
        "REPRO_BENCH_CACHE_DIR", "benchmarks/cache"
    )
    cache = ResultCache(cache_dir)
    out_dir = pathlib.Path(args.out)
    scale = figure_scale(args.scale)
    only = args.only or None

    if args.list:
        rows = []
        for status in plan(cache, out_dir, scale, only=only):
            rows.append([
                status.spec.name,
                status.spec.title,
                "fresh" if status.fresh else "stale",
                f"{status.cached_points}/{status.total_points}",
            ])
        print(format_table(
            ["figure", "table", "state", "points cached"],
            rows, title=f"figure tables ({scale.name} scale)",
        ))
        return 0

    outcomes = regenerate(
        cache, out_dir, scale, only=only, force=args.force, progress=print,
    )
    rebuilt = sum(1 for __, action in outcomes if action == "rebuilt")
    print(f"{rebuilt} rebuilt, {len(outcomes) - rebuilt} fresh "
          f"(tables in {out_dir}, cache {cache_dir})")
    return 0


def _profile_functional(args: argparse.Namespace, profiler) -> int:
    """Time one functional pass; ``--vector off`` measures the scalar
    data plane."""
    import contextlib
    import pstats
    import time

    from repro import kernels
    from repro.fastpath.bench import result_digest

    override = (
        contextlib.nullcontext() if args.vector is None
        else kernels.overridden(args.vector != "off")
    )
    cache = MetadataCache(capacity_bytes=args.mdcache_kb * 1024,
                          metadata_base=DEFAULT_METADATA_BASE)
    with override:
        vector_on = kernels.enabled()
        start = time.perf_counter()
        if profiler is not None:
            profiler.enable()
        run = run_functional(
            args.benchmark, cores=args.cores,
            records_per_core=args.records, seed=args.seed,
            footprint_scale=1.0 / args.scale_factor,
            llc_bytes=max(64 * 1024, 8 * 1024 * 1024 // args.scale_factor),
            metadata_cache=cache,
        )
        if profiler is not None:
            profiler.disable()
        wall = time.perf_counter() - start

    events = args.cores * args.records
    print(format_table(
        ["metric", "value"],
        [
            ["vector kernels",
             "on" if vector_on
             else "disabled (scalar event loop; set REPRO_VECTOR=1 or "
                  "--vector on to enable)"],
            ["wall clock (s)", f"{wall:.3f}"],
            ["events (records)", str(events)],
            ["events/sec", f"{events / wall:.0f}"],
            ["result digest", result_digest(run)[:16]],
        ],
        title=f"profile: {args.benchmark} functional pass",
    ))
    if profiler is not None:
        stats = pstats.Stats(profiler)
        stats.sort_stats(args.sort)
        stats.print_stats(args.limit)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Time one run (optionally under cProfile) and print its fast-path
    cache telemetry; ``--fastpath off`` measures the reference path."""
    import contextlib
    import cProfile
    import pstats
    import time

    from repro import fastpath
    from repro.fastpath.bench import result_digest

    profiler = cProfile.Profile() if args.cprofile else None
    if args.functional:
        return _profile_functional(args, profiler)
    # No --fastpath flag means "whatever the environment says", so
    # REPRO_FASTPATH=0 is honoured instead of silently force-enabled.
    override = (
        contextlib.nullcontext() if args.fastpath is None
        else fastpath.overridden(args.fastpath != "off")
    )
    with override:
        start = time.perf_counter()
        if profiler is not None:
            profiler.enable()
        result = run_benchmark(
            args.benchmark, args.system, scale=_scale_from_args(args),
            seed=args.seed,
        )
        if profiler is not None:
            profiler.disable()
        wall = time.perf_counter() - start

    perf = result.perf or {}
    fastpath_on = bool(perf.get("fastpath"))
    rows = [
        ["fastpath",
         "on" if fastpath_on
         else "disabled (reference path; set REPRO_FASTPATH=1 or "
              "--fastpath on to enable)"],
        ["wall clock (s)", f"{wall:.3f}"],
        ["events (instructions)", str(result.instructions)],
        ["events/sec", f"{result.instructions / wall:.0f}"],
        ["result digest", result_digest(result)[:16]],
    ]
    # Cache telemetry only means something on the fast path — on the
    # reference path every counter is zero and the table used to print
    # a confusing block of empty caches.
    if fastpath_on:
        for name in ("classify", "keystream", "verified_reads"):
            counters = perf.get(name)
            if counters is not None:
                rows.append([
                    f"{name} cache",
                    f"{counters['hits']}/"
                    f"{counters['hits'] + counters['misses']}"
                    f" hits ({100 * counters['hit_rate']:.1f}%)",
                ])
        if "full_encodes" in perf:
            rows.append(["full encodes", str(perf["full_encodes"])])
        scheduler = perf.get("scheduler")
        if scheduler is not None:
            bucket = scheduler["bucket"]
            rows += [
                ["scheduler computes", str(scheduler["computes"])],
                ["scheduler bucket cache",
                 f"{bucket['hits']}/{bucket['hits'] + bucket['misses']}"
                 f" hits ({100 * bucket['hit_rate']:.1f}%)"],
                ["scheduler horizon skips", str(scheduler["horizon_skips"])],
                ["scheduler advances", str(scheduler["advances"])],
            ]
            batches = scheduler.get("kernel_batches", 0)
            if batches:
                lanes = scheduler.get("kernel_lanes", 0)
                rows.append([
                    "scheduler vector plane",
                    f"{batches} batches, {lanes} lanes "
                    f"({lanes / batches:.1f} lanes/batch)",
                ])
    print(format_table(
        ["metric", "value"], rows,
        title=f"profile: {args.benchmark} on {args.system}",
    ))
    if profiler is not None:
        stats = pstats.Stats(profiler)
        stats.sort_stats(args.sort)
        stats.print_stats(args.limit)
    return 0


def _obs_config_from_args(args: argparse.Namespace, trace: bool):
    from repro.obs import ObsConfig

    return ObsConfig(
        epoch_cycles=args.obs_epoch,
        trace=trace,
        trace_sample_every=getattr(args, "trace_sample", 1),
        trace_capacity=getattr(args, "trace_capacity", 65536),
    )


def _trace_run_dir(args: argparse.Namespace) -> int:
    """Export a finished orchestrated run's span log as a Perfetto trace."""
    from repro.obs.fleet import load_span_records, write_fleet_trace

    if not load_span_records(args.run):
        print(f"no span records under {args.run}/spans.jsonl")
        print("record some by re-running the sweep with --spans "
              "(sweep / orchestrate / cluster sweep)")
        return 1
    path, trace = write_fleet_trace(args.run, output=args.output)
    events = trace.get("traceEvents", [])
    spans = sum(1 for e in events if e.get("ph") == "X")
    marks = sum(1 for e in events if e.get("ph") == "i")
    agents = trace.get("otherData", {}).get("agents", [])
    rows = [
        ["trace file", str(path)],
        ["span events", str(spans)],
        ["instant events", str(marks)],
        ["agents", ", ".join(agents) if agents else "(local pool only)"],
    ]
    for entry in trace.get("otherData", {}).get("clock_offsets", []):
        offset = entry.get("offset_s")
        if entry.get("agent") and offset is not None:
            rows.append([f"clock offset: {entry['agent']}",
                         f"{1000 * offset:+.3f} ms"])
    print(format_table(["metric", "value"], rows,
                       title=f"fleet trace: {args.run}"))
    print(f"open in Perfetto (https://ui.perfetto.dev) or "
          f"chrome://tracing: {path}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Record sampled request lifecycles and write a Chrome trace."""
    from repro.obs import Observability

    if args.run is not None:
        return _trace_run_dir(args)

    hub = Observability(_obs_config_from_args(args, trace=True))
    result = run_benchmark(
        args.benchmark, args.system, scale=_scale_from_args(args),
        seed=args.seed, obs=hub,
    )
    tracer = hub.tracer
    output = args.output or f"{args.benchmark}.{args.system}.trace.json"
    tracer.write_json(output)

    obs = result.obs
    rows = [
        ["trace file", output],
        ["LLC misses seen", str(tracer.seen)],
        ["lifecycles traced", str(tracer.traced)],
        ["events recorded", str(len(tracer.events))],
        ["events dropped (ring full)", str(tracer.dropped)],
        ["epochs sampled", str(obs.num_epochs)],
    ]
    summary = obs.summary()
    if summary.get("copr_accuracy") is not None:
        rows.append(["COPR accuracy",
                     f"{100 * summary['copr_accuracy']:.1f}%"])
    rows.append(["bandwidth (B/bus-cycle)",
                 f"{summary['bandwidth_bytes_per_cycle']:.2f}"])
    print(format_table(["metric", "value"], rows,
                       title=f"trace: {args.benchmark} on {args.system}"))
    print(f"open in Perfetto (https://ui.perfetto.dev) or "
          f"chrome://tracing: {output}")
    return 0


def _metrics_list(args: argparse.Namespace) -> int:
    """Print the metric catalog (no simulation)."""
    from repro.obs import METRIC_CATALOG

    rows = [
        [spec.name, spec.kind, spec.unit, spec.description]
        for spec in METRIC_CATALOG
    ]
    print(format_table(
        ["metric", "kind", "unit", "description"], rows,
        title="Observable metrics (cumulative columns are stored as "
              "per-epoch deltas)",
    ))
    return 0


def _metrics_plot(args: argparse.Namespace, obs) -> int:
    """Render the observed run's time series to an image file."""
    from repro.obs.plot import PlotUnavailable, render_timeseries

    out = args.out or f"{args.benchmark}.{args.system}.metrics.png"
    try:
        path = render_timeseries(
            obs, out,
            title=f"{args.benchmark} on {args.system} "
                  f"(epoch = {args.obs_epoch:.0f} bus cycles)",
        )
    except PlotUnavailable as exc:
        print(f"plotting unavailable: {exc}")
        return 1
    print(f"wrote {obs.num_epochs} epochs across "
          f"{len(obs.columns) - 1} series to {path}")
    return 0


def _metrics_functional(args: argparse.Namespace) -> int:
    """Counter totals of one observed functional (timing-free) pass."""
    from repro.core.copr import CoprConfig
    from repro.obs import Observability
    from repro.obs.metrics import find_metric

    hub = Observability()
    cache = MetadataCache(capacity_bytes=args.mdcache_kb * 1024,
                          metadata_base=DEFAULT_METADATA_BASE)
    copr_config = CoprConfig(
        papr_entries=max(1024, 65536 // args.scale_factor),
        lipr_entries=max(256, 16384 // args.scale_factor),
    )
    run_functional(
        args.benchmark, cores=args.cores, records_per_core=args.records,
        seed=args.seed, footprint_scale=1.0 / args.scale_factor,
        llc_bytes=max(64 * 1024, 8 * 1024 * 1024 // args.scale_factor),
        metadata_cache=cache, copr_config=copr_config, obs=hub,
    )
    rows = []
    for name in hub.registry.names():
        counter = hub.registry.get(name)
        spec = find_metric(name)
        rows.append([
            name, f"{counter.value:.0f}",
            spec.description if spec is not None else "",
        ])
    print(format_table(
        ["counter", "total", "description"], rows,
        title=f"{args.benchmark}: functional-pass counters",
    ))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Dump the per-epoch time series of one observed run."""
    from repro.obs import Observability

    if args.action == "list":
        return _metrics_list(args)

    if args.functional:
        return _metrics_functional(args)

    hub = Observability(_obs_config_from_args(args, trace=False))
    result = run_benchmark(
        args.benchmark, args.system, scale=_scale_from_args(args),
        seed=args.seed, obs=hub,
    )
    obs = result.obs

    if args.plot:
        return _metrics_plot(args, obs)

    if args.csv:
        import csv as csv_module
        import io

        names = sorted(obs.columns)
        buffer = io.StringIO()
        writer = csv_module.writer(buffer, lineterminator="\n")
        writer.writerow(names)
        for row in zip(*(obs.columns[name] for name in names)):
            writer.writerow(row)
        if args.csv == "-":
            print(buffer.getvalue(), end="")
        else:
            with open(args.csv, "w", encoding="utf-8") as handle:
                handle.write(buffer.getvalue())
            print(f"wrote {obs.num_epochs} epochs to {args.csv}")
        return 0

    accuracy = obs.rate("copr_correct", "copr_predictions")
    bandwidth = obs.per_cycle("bytes_transferred")
    misses = obs.series("llc_misses")
    hits = obs.series("llc_hits")
    miss_rate = [
        (m / (m + h) if (m + h) else 0.0) for m, h in zip(misses, hits)
    ]
    rows = []
    for index in range(obs.num_epochs):
        row = [str(index), f"{obs.series('cycle')[index]:.0f}",
               f"{bandwidth[index]:.2f}"]
        row.append(f"{100 * accuracy[index]:.1f}%" if accuracy else "-")
        row.append(f"{100 * miss_rate[index]:.1f}%" if miss_rate else "-")
        rows.append(row)
    print(format_table(
        ["epoch", "cycle", "BW (B/cyc)", "COPR acc", "LLC miss"],
        rows,
        title=f"metrics: {args.benchmark} on {args.system} "
              f"(epoch = {args.obs_epoch:.0f} bus cycles)",
    ))
    summary = obs.summary()
    print(f"overall: bandwidth {summary['bandwidth_bytes_per_cycle']:.2f} "
          f"B/cycle over {obs.num_epochs} epochs")
    latency = hub.registry.get("controller.read_latency_bus_cycles")
    if latency is not None and getattr(latency, "count", 0):
        print(f"read latency (bus cycles): "
              f"p50 {latency.quantile(0.50):.1f}, "
              f"p95 {latency.quantile(0.95):.1f}, "
              f"p99 {latency.quantile(0.99):.1f} "
              f"over {latency.count} reads (bucket estimates)")
    return 0


def _grid_obs(args: argparse.Namespace):
    """The grid's ObsConfig when ``--obs`` was passed, else None."""
    if not getattr(args, "obs", False):
        return None
    from repro.obs import ObsConfig

    # Grid points never keep a tracer handle to write out, so sweeps
    # collect only the time series.
    return ObsConfig(epoch_cycles=args.obs_epoch, trace=False)


def _grid_fleet(args: argparse.Namespace):
    """The grid's FleetConfig when fleet flags were passed, else None."""
    spans = bool(getattr(args, "spans", False))
    port = getattr(args, "status_port", None)
    if not spans and port is None:
        return None
    from repro.obs.fleet import FleetConfig

    return FleetConfig(spans=spans, status_port=port)


def _grid_chaos(args: argparse.Namespace):
    """The grid's ChaosPlan when ``--chaos`` was passed, else None.

    Lazy: the chaos package is only imported when a spec is present, so
    plain sweeps never pay for it (``REPRO_CHAOS`` is still honoured
    downstream by the orchestrator itself).
    """
    spec = getattr(args, "chaos", None)
    if not spec:
        return None
    from repro.chaos import ChaosSpecError, parse_chaos

    try:
        return parse_chaos(spec)
    except ChaosSpecError as exc:
        raise SystemExit(f"error: --chaos {spec!r}: {exc}") from None


def _run_grid(args: argparse.Namespace, run_dir=None):
    """Shared sweep/orchestrate execution path."""
    from repro.sim.sweep import run_sweep

    return run_sweep(
        benchmarks=list(args.benchmarks),
        systems=list(args.systems),
        seeds=list(args.seeds) if args.seeds else [args.seed],
        scale=_scale_from_args(args),
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        run_dir=run_dir,
        timeout_s=args.timeout,
        retries=args.retries,
        progress=args.progress,
        obs=_grid_obs(args),
        pool=args.pool,
        recycle_after=args.recycle_after,
        fleet=_grid_fleet(args),
        chaos=_grid_chaos(args),
    )


def _report_failures(sweep) -> None:
    for outcome in sweep.failures:
        print(f"FAILED {outcome.spec.describe()} "
              f"after {outcome.attempts} attempt(s): {outcome.error}")


def _cmd_sweep(args: argparse.Namespace) -> int:
    sweep = _run_grid(args, run_dir=args.run_dir)
    csv_text = sweep.to_csv(metrics=list(args.metrics))
    if args.output == "-":
        print(csv_text, end="")
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(csv_text)
        print(f"wrote {len(sweep.points)} rows to {args.output}")
    _report_failures(sweep)
    return 1 if sweep.failures else 0


def _orchestrate_replay(args: argparse.Namespace) -> int:
    """Re-run one failed grid point in-process from its crash dump."""
    from repro.obs.crashdump import (
        find_crash_dumps,
        load_crash_dump,
        replay_from_dump,
    )

    run_dir = args.run_dir or args.resume
    if run_dir is None:
        print("replay needs --run-dir <run-dir> (the failed run's directory)")
        return 1
    if args.key is None:
        dumps = find_crash_dumps(run_dir)
        if not dumps:
            print(f"no crash dumps under {run_dir}/crashes")
            return 1
        print(f"{len(dumps)} crash dump(s) under {run_dir}:")
        for path in dumps:
            dump = load_crash_dump(path)
            print(f"  {dump['key']} attempt {dump['attempt']}: "
                  f"{dump['error']}")
        print("replay one with: repro orchestrate replay <key-prefix> "
              f"--run-dir {run_dir}")
        return 1
    dumps = find_crash_dumps(run_dir, key_prefix=args.key)
    matched_keys = sorted({load_crash_dump(p)["key"] for p in dumps})
    if not dumps:
        print(f"no crash dump matching {args.key!r} under {run_dir}/crashes")
        return 1
    if len(matched_keys) > 1:
        print(f"{args.key!r} is ambiguous; matches:")
        for key in matched_keys:
            print(f"  {key}")
        return 1
    dump = load_crash_dump(dumps[-1])  # the key's latest attempt
    print(f"replaying {dump['key']} (attempt {dump['attempt']}) "
          f"from {dumps[-1]}")
    print(f"original failure: {dump['error']}")
    result = replay_from_dump(dump, use_pdb=args.pdb)
    if result is None:
        return 1  # --pdb post-mortem path: failure reproduced
    print("replay succeeded — the failure did not reproduce in-process")
    print(f"  runtime (core cycles): {result.runtime_core_cycles:.0f}")
    return 0


def _cmd_orchestrate(args: argparse.Namespace) -> int:
    """Durable, resumable grid runs: ``orchestrate`` / ``orchestrate --resume``."""
    import pathlib

    from repro.orchestrator.manifest import RunManifest
    from repro.sim.runner import ExperimentScale

    if args.action == "replay":
        return _orchestrate_replay(args)

    if args.resume:
        run_dir = pathlib.Path(args.resume)
        # Probe before RunManifest(): its constructor creates the run
        # directory, which would turn a typo'd path into an empty run.
        if not (run_dir / "run.json").exists():
            print(f"no run.json under {run_dir}; nothing to resume")
            return 1
        spec = RunManifest(run_dir).read_spec()
        args.benchmarks = spec["benchmarks"]
        args.systems = spec["systems"]
        args.seeds = spec["seeds"]
        scale = ExperimentScale.from_dict(spec["scale"])
        if args.cache_dir is None:
            args.cache_dir = spec.get("cache_dir")
        sweep = _run_grid_with_scale(args, scale, run_dir)
    else:
        if args.run_dir is None:
            print("orchestrate needs --run-dir (or --resume <run-dir>)")
            return 1
        run_dir = pathlib.Path(args.run_dir)
        sweep = _run_grid(args, run_dir=run_dir)

    csv_path = run_dir / "sweep.csv"
    csv_path.write_text(sweep.to_csv(metrics=list(args.metrics)),
                        encoding="utf-8")

    summary = _read_summary(run_dir)
    rows = [["grid points", str(len(sweep.points) + len(sweep.failures))],
            ["csv", str(csv_path)]]
    if summary:
        rows += [
            ["simulated", str(summary["done"])],
            ["cached", str(summary["cached"])],
            ["failed", str(summary["failed"])],
            ["cache hit rate", f"{100 * summary['cache_hit_rate']:.1f}%"],
            ["worker utilization",
             f"{100 * summary['worker_utilization']:.1f}%"],
            ["elapsed", f"{summary['elapsed_s']:.2f}s"],
        ]
    print(format_table(["metric", "value"], rows,
                       title=f"orchestrated run: {run_dir}"))
    _report_failures(sweep)
    return 1 if sweep.failures else 0


def _cluster_agent(args: argparse.Namespace) -> int:
    from repro.cluster.agent import AgentServer, parse_listen
    from repro.orchestrator.workers import DEFAULT_RECYCLE_AFTER

    host, port = parse_listen(args.listen)
    server = AgentServer(
        host=host, port=port, jobs=args.jobs, pool=args.pool,
        recycle_after=(args.recycle_after if args.recycle_after is not None
                       else DEFAULT_RECYCLE_AFTER),
        cache_dir=args.cache_dir, name=args.name, once=args.once,
    )
    server.bind()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _cluster_sweep(args: argparse.Namespace) -> int:
    import os

    from repro.cluster import connect_cluster
    from repro.orchestrator import ResultCache
    from repro.sim.sweep import run_sweep

    chaos = _grid_chaos(args)
    if chaos is not None:
        # Agents this sweep launches inherit the environment, so one
        # --chaos spec arms transport/worker faults fleet-wide (dialed
        # agents keep their own REPRO_CHAOS setting).
        os.environ.setdefault("REPRO_CHAOS", args.chaos)
    backend = connect_cluster(
        args.hosts,
        agent_jobs=args.agent_jobs,
        agent_pool=args.pool,
        cache=(ResultCache(args.cache_dir)
               if args.cache_dir is not None else None),
    )
    sweep = run_sweep(
        benchmarks=list(args.benchmarks),
        systems=list(args.systems),
        seeds=list(args.seeds) if args.seeds else [args.seed],
        scale=_scale_from_args(args),
        jobs=max(1, backend.total_slots()),
        cache_dir=args.cache_dir,
        run_dir=args.run_dir,
        timeout_s=args.timeout,
        retries=args.retries,
        progress=args.progress,
        obs=_grid_obs(args),
        pool=backend,
        fleet=_grid_fleet(args),
        chaos=chaos,
    )
    csv_text = sweep.to_csv(metrics=list(args.metrics))
    if args.output == "-":
        print(csv_text, end="")
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(csv_text)
        print(f"wrote {len(sweep.points)} rows to {args.output}")
    rows = [
        [link.name, link.address, str(link.served)]
        for link in backend.agents()
    ]
    print(format_table(
        ["agent", "address", "jobs served"], rows,
        title=f"cluster: {len(rows)} agent(s), "
              f"{backend.redispatched} re-dispatched, "
              f"{backend.speculated} speculated",
    ))
    _report_failures(sweep)
    return 1 if sweep.failures else 0


def _cluster_status(args: argparse.Namespace) -> int:
    from repro.cluster import ClusterError, agent_status, parse_hosts

    failures = 0
    rows = []
    for spec in parse_hosts(args.hosts):
        if spec.kind != "dial":
            print(f"status needs HOST:PORT entries, got {spec.describe()}")
            failures += 1
            continue
        try:
            reply = agent_status(spec.host, spec.port)
        except (OSError, ClusterError) as exc:
            rows.append([spec.describe(), "unreachable", "-", "-", "-"])
            print(f"{spec.describe()}: {exc}")
            failures += 1
            continue
        rows.append([
            reply.get("name", spec.describe()),
            "listening",
            str(reply.get("slots", "-")),
            str(reply.get("served", "-")),
            str(reply.get("cache_hits", "-")),
        ])
    print(format_table(
        ["agent", "state", "slots", "served", "cache hits"], rows,
        title=f"cluster status: {len(rows)} agent(s)",
    ))
    return 1 if failures else 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Live terminal dashboard for a running (or finished) grid run."""
    from repro.obs.top import run_top

    try:
        return run_top(args.target, interval_s=args.interval,
                       once=args.once)
    except KeyboardInterrupt:
        return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    handlers = {
        "agent": _cluster_agent,
        "sweep": _cluster_sweep,
        "status": _cluster_status,
    }
    return handlers[args.cluster_command](args)


def _run_grid_with_scale(args, scale, run_dir):
    from repro.sim.sweep import run_sweep

    return run_sweep(
        benchmarks=list(args.benchmarks),
        systems=list(args.systems),
        seeds=list(args.seeds),
        scale=scale,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        run_dir=run_dir,
        timeout_s=args.timeout,
        retries=args.retries,
        progress=args.progress,
        obs=_grid_obs(args),
        pool=args.pool,
        recycle_after=args.recycle_after,
        fleet=_grid_fleet(args),
        chaos=_grid_chaos(args),
    )


def _read_summary(run_dir):
    import json

    path = run_dir / "telemetry.jsonl"
    summary = None
    if path.exists():
        for line in path.read_text(encoding="utf-8").splitlines():
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if record.get("event") == "summary":
                summary = record
    return summary


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Attaché (MICRO 2018) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list available workloads")

    run_parser = commands.add_parser("run", help="simulate one system")
    _add_common(run_parser)
    run_parser.add_argument("--system", choices=SYSTEMS, default="attache")

    compare_parser = commands.add_parser(
        "compare", help="simulate several systems on one workload"
    )
    _add_common(compare_parser)
    compare_parser.add_argument(
        "--systems", nargs="+", choices=SYSTEMS, default=list(SYSTEMS)
    )

    functional_parser = commands.add_parser(
        "functional", help="timing-free predictor / metadata-cache study"
    )
    _add_common(functional_parser)
    functional_parser.add_argument("--mdcache", action="store_true",
                                   help="measure a metadata cache")
    functional_parser.add_argument("--mdcache-kb", type=int, default=32)
    functional_parser.add_argument("--copr", action="store_true",
                                   help="measure the COPR predictor")

    figures_parser = commands.add_parser(
        "figures",
        help="regenerate figure tables incrementally from cached points",
    )
    figures_parser.add_argument(
        "--scale", choices=("tiny", "fast", "full"), default="tiny",
        help="simulation scale per point (matches REPRO_BENCH_SCALE "
             "presets, so bench runs share the cache)",
    )
    figures_parser.add_argument(
        "--out", default="benchmarks/out",
        help="directory for rendered tables and the freshness state",
    )
    figures_parser.add_argument(
        "--cache-dir", default=None,
        help="result cache root (default $REPRO_BENCH_CACHE_DIR or "
             "benchmarks/cache)",
    )
    figures_parser.add_argument(
        "--only", nargs="+", default=None, metavar="FIGURE",
        help="restrict to the named figure(s)",
    )
    figures_parser.add_argument(
        "--force", action="store_true",
        help="rebuild even when the point-key set is unchanged",
    )
    figures_parser.add_argument(
        "--list", action="store_true",
        help="show each figure's freshness without simulating",
    )

    profile_parser = commands.add_parser(
        "profile",
        help="time one run and print fast-path cache telemetry",
    )
    _add_common(profile_parser)
    # Defaults pin the reference workload (repro.fastpath.bench); any
    # other point stays reachable through the common flags.
    profile_parser.set_defaults(benchmark="RAND", cores=4, records=1500,
                                warmup=0)
    profile_parser.add_argument("--system", choices=SYSTEMS,
                                default="attache")
    profile_parser.add_argument(
        "--fastpath", choices=("on", "off"), default=None,
        help="'off' measures the reference (slow) path; omitted, the "
             "REPRO_FASTPATH environment setting applies",
    )
    profile_parser.add_argument(
        "--functional", action="store_true",
        help="time the functional (timing-free) pass instead of the "
             "cycle-level simulator",
    )
    profile_parser.add_argument(
        "--vector", choices=("on", "off"), default=None,
        help="'off' times the scalar data plane; omitted, the "
             "REPRO_VECTOR environment setting applies "
             "(used with --functional)",
    )
    profile_parser.add_argument(
        "--mdcache-kb", type=int, default=32,
        help="metadata-cache capacity for --functional",
    )
    profile_parser.add_argument("--cprofile", action="store_true",
                                help="run under cProfile and print hotspots")
    profile_parser.add_argument("--sort", default="cumulative",
                                help="cProfile sort column")
    profile_parser.add_argument("--limit", type=int, default=25,
                                help="cProfile rows to print")

    trace_parser = commands.add_parser(
        "trace",
        help="record sampled request lifecycles as Chrome trace JSON",
    )
    _add_common(trace_parser)
    trace_parser.add_argument("--system", choices=SYSTEMS, default="attache")
    trace_parser.add_argument(
        "--output", default=None,
        help="trace path (default <benchmark>.<system>.trace.json)",
    )
    trace_parser.add_argument(
        "--run", metavar="RUN_DIR", default=None,
        help="instead of simulating, merge RUN_DIR/spans.jsonl (recorded "
             "by sweep/orchestrate/cluster sweep --spans) into one "
             "Perfetto trace of the whole distributed run",
    )
    _add_obs(trace_parser)
    trace_parser.add_argument(
        "--trace-sample", type=_positive_int, default=1,
        help="trace every Nth LLC miss (1 = all)",
    )
    trace_parser.add_argument(
        "--trace-capacity", type=_positive_int, default=65536,
        help="ring-buffer cap on stored trace events",
    )

    metrics_parser = commands.add_parser(
        "metrics", help="dump the per-epoch observability time series"
    )
    _add_common(metrics_parser)
    metrics_parser.add_argument(
        "action", nargs="?", choices=("list",), default=None,
        help="'list' prints the metric catalog (names, kinds, units) "
             "without simulating",
    )
    metrics_parser.add_argument("--system", choices=SYSTEMS,
                                default="attache")
    metrics_parser.add_argument(
        "--functional", action="store_true",
        help="observe a timing-free functional pass (metadata cache + "
             "COPR) and print its counter totals instead of a timing "
             "run's time series",
    )
    metrics_parser.add_argument(
        "--mdcache-kb", type=int, default=32,
        help="metadata-cache capacity for --functional",
    )
    metrics_parser.add_argument(
        "--csv", default=None,
        help="write all columns as CSV to this path ('-' for stdout) "
             "instead of the rendered table",
    )
    metrics_parser.add_argument(
        "--plot", action="store_true",
        help="render the time series as an image (needs matplotlib; "
             "falls back to the Agg backend on headless machines)",
    )
    metrics_parser.add_argument(
        "--out", default=None,
        help="image path for --plot "
             "(default <benchmark>.<system>.metrics.png)",
    )
    _add_obs(metrics_parser)

    sweep_parser = commands.add_parser(
        "sweep", help="run a benchmark x system grid, export CSV"
    )
    _add_common(sweep_parser)
    _add_grid(sweep_parser)
    sweep_parser.add_argument("--output", default="-",
                              help="CSV path, or '-' for stdout")

    orchestrate_parser = commands.add_parser(
        "orchestrate",
        help="durable parallel grid run (manifest + telemetry + resume)",
    )
    _add_common(orchestrate_parser)
    _add_grid(orchestrate_parser)
    orchestrate_parser.add_argument(
        "action", nargs="?", choices=("replay",), default=None,
        help="'replay' re-runs one failed grid point from its crash dump",
    )
    orchestrate_parser.add_argument(
        "key", nargs="?", default=None,
        help="crash-dump job key (or unambiguous prefix) to replay",
    )
    orchestrate_parser.add_argument(
        "--pdb", action="store_true",
        help="drop into pdb post-mortem when the replay fails again",
    )
    orchestrate_parser.add_argument(
        "--resume", metavar="RUN_DIR", default=None,
        help="resume an interrupted/failed run from its run directory "
             "(grid and scale come from its run.json)",
    )

    cluster_parser = commands.add_parser(
        "cluster",
        help="distributed sweeps over remote worker agents",
    )
    cluster_commands = cluster_parser.add_subparsers(
        dest="cluster_command", required=True
    )

    agent_parser = cluster_commands.add_parser(
        "agent", help="serve jobs for a remote coordinator"
    )
    agent_parser.add_argument(
        "--listen", required=True, metavar="HOST:PORT",
        help="bind address (port 0 lets the OS choose; the agent "
             "announces the resolved port on stdout)",
    )
    agent_parser.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="local worker slots this agent offers",
    )
    agent_parser.add_argument(
        "--pool", choices=["warm", "spawn"], default="warm",
        help="local execution backend behind the agent",
    )
    agent_parser.add_argument(
        "--recycle-after", type=_positive_int, default=None,
        help="jobs a warm worker serves before being replaced",
    )
    agent_parser.add_argument(
        "--cache-dir", default=None,
        help="agent-local result cache (enables cache federation)",
    )
    agent_parser.add_argument("--name", default=None,
                              help="agent name in manifests/telemetry "
                                   "(default hostname:port)")
    agent_parser.add_argument(
        "--once", action="store_true",
        help="exit after serving one coordinator session",
    )

    cluster_sweep_parser = cluster_commands.add_parser(
        "sweep", help="run a sweep grid across remote agents"
    )
    _add_common(cluster_sweep_parser)
    _add_grid(cluster_sweep_parser)
    cluster_sweep_parser.add_argument(
        "--hosts", nargs="+", required=True, metavar="HOST",
        help="agents: HOST:PORT (already running), 'local' (launch a "
             "loopback agent) or ssh://user@host (launch over SSH)",
    )
    cluster_sweep_parser.add_argument(
        "--agent-jobs", type=_positive_int, default=1,
        help="worker slots per agent this sweep launches (dialed "
             "agents keep their own --jobs)",
    )
    cluster_sweep_parser.add_argument(
        "--output", default="-", help="CSV path, or '-' for stdout"
    )

    cluster_status_parser = cluster_commands.add_parser(
        "status", help="query running agents"
    )
    cluster_status_parser.add_argument(
        "--hosts", nargs="+", required=True, metavar="HOST:PORT",
        help="agents to query (HOST:PORT only)",
    )

    top_parser = commands.add_parser(
        "top",
        help="live dashboard for a grid run (status URL or run dir)",
    )
    top_parser.add_argument(
        "target", metavar="URL|RUN_DIR",
        help="a --status-port URL (http://host:port) for a live view, or "
             "a run directory for a post-hoc snapshot from its "
             "telemetry.jsonl",
    )
    top_parser.add_argument(
        "--interval", type=float, default=1.0,
        help="seconds between refreshes (live view)",
    )
    top_parser.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit",
    )
    return parser


def _add_obs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--obs-epoch", type=float, default=2048.0,
        help="time-series epoch length in memory-bus cycles",
    )


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _jobs_arg(text: str):
    """``--jobs`` parser: a positive integer, or ``auto``."""
    if text == "auto":
        return "auto"
    try:
        return _positive_int(text)
    except (ValueError, argparse.ArgumentTypeError):
        raise argparse.ArgumentTypeError(
            f"must be a positive integer or 'auto', got {text!r}"
        ) from None


def _add_grid(parser: argparse.ArgumentParser) -> None:
    """Axes + orchestration flags shared by ``sweep`` and ``orchestrate``."""
    parser.add_argument("--benchmarks", nargs="+", default=["STREAM"])
    parser.add_argument(
        "--systems", nargs="+", choices=SYSTEMS, default=["baseline", "attache"]
    )
    parser.add_argument("--seeds", nargs="+", type=int, default=None,
                        help="seed axis (defaults to the single --seed)")
    parser.add_argument(
        "--metrics", nargs="+",
        default=["runtime_core_cycles", "ipc", "energy_nj"],
    )
    parser.add_argument("--jobs", type=_jobs_arg, default="auto",
                        help="parallel worker processes, or 'auto' (the "
                             "default) to size from CPUs, memory and "
                             "prior run telemetry")
    parser.add_argument("--pool", choices=["warm", "spawn"], default="warm",
                        help="worker strategy: persistent warm pool with "
                             "a shared workload bank (default) or one "
                             "fresh process per attempt")
    parser.add_argument("--recycle-after", type=_positive_int, default=None,
                        help="jobs a warm worker serves before being "
                             "replaced by a fresh process")
    parser.add_argument("--cache-dir", default=None,
                        help="content-addressed result cache directory")
    parser.add_argument("--run-dir", default=None,
                        help="durable run directory (manifest/telemetry)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-point wall-clock timeout in seconds")
    parser.add_argument("--retries", type=int, default=1,
                        help="retries per grid point after a failure")
    parser.add_argument("--progress", action="store_true",
                        help="render a live progress line on stderr")
    parser.add_argument("--obs", action="store_true",
                        help="attach per-epoch time series to every "
                             "grid point's result")
    parser.add_argument("--spans", action="store_true",
                        help="record orchestration spans (queued/dispatch/"
                             "run/cache/retry per attempt) to "
                             "<run-dir>/spans.jsonl for repro trace --run")
    parser.add_argument("--status-port", type=int, default=None,
                        metavar="PORT",
                        help="serve live /status.json + Prometheus "
                             "/metrics on this port while the grid runs "
                             "(0 = OS-chosen; the URL is announced)")
    parser.add_argument("--chaos", default=None, metavar="SPEC",
                        help="deterministic fault injection: PROFILE"
                             "[,site=rate...][@seed], e.g. "
                             "'default@2018' or 'off,worker.crash=0.2'; "
                             "results stay byte-identical to a "
                             "fault-free run (see docs/ROBUSTNESS.md)")
    _add_obs(parser)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "compare": _cmd_compare,
        "functional": _cmd_functional,
        "figures": _cmd_figures,
        "profile": _cmd_profile,
        "trace": _cmd_trace,
        "metrics": _cmd_metrics,
        "sweep": _cmd_sweep,
        "orchestrate": _cmd_orchestrate,
        "cluster": _cmd_cluster,
        "top": _cmd_top,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
