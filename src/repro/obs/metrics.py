"""Named metric instruments: counters, gauges and histograms.

A :class:`MetricsRegistry` is a flat namespace of instruments that
components create once (at construction) and update on hot paths.  The
**null registry** is the system-wide default: it hands out shared no-op
instruments whose update methods do nothing, so instrumented code pays
one attribute lookup and an empty method call when observability is
off — cheap enough to leave in paths the perf gate watches.

Instruments are deliberately minimal:

* :class:`Counter` — monotonically increasing float.
* :class:`Gauge` — last-written value.
* :class:`Histogram` — fixed bucket bounds chosen at creation; observes
  land in the first bucket whose upper bound is >= the value, with an
  implicit +inf overflow bucket.  Sum and count ride along so means
  survive aggregation.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


class Counter:
    """A monotonically increasing named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def to_dict(self) -> Dict[str, object]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A named value that tracks the most recent observation."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def to_dict(self) -> Dict[str, object]:
        return {"type": "gauge", "value": self.value}


#: Default histogram bounds for latencies measured in bus cycles.
LATENCY_BOUNDS: Tuple[float, ...] = (
    16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0,
)


class Histogram:
    """Fixed-bound histogram with sum/count for mean reconstruction."""

    __slots__ = ("name", "bounds", "buckets", "total", "count")

    def __init__(self, name: str, bounds: Sequence[float] = LATENCY_BOUNDS) -> None:
        ordered = tuple(float(b) for b in bounds)
        if not ordered or any(
            b >= c for b, c in zip(ordered, ordered[1:])
        ):
            raise ValueError("histogram bounds must be strictly increasing")
        self.name = name
        self.bounds = ordered
        self.buckets: List[int] = [0] * (len(ordered) + 1)  # +inf overflow
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile (0..1) from the bucket counts.

        Linear interpolation inside the chosen bucket, the same estimate
        Prometheus's ``histogram_quantile`` computes from
        ``_bucket{le=...}`` series.  The overflow bucket has no upper
        bound, so ranks landing there clamp to the last finite bound.
        Returns 0.0 for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.buckets):
            previous = cumulative
            cumulative += bucket_count
            if cumulative < rank or not bucket_count:
                continue
            if index >= len(self.bounds):
                return self.bounds[-1]  # overflow bucket: clamp
            upper = self.bounds[index]
            lower = self.bounds[index - 1] if index else 0.0
            return lower + (upper - lower) * (rank - previous) / bucket_count
        return self.bounds[-1]

    def to_dict(self) -> Dict[str, object]:
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "sum": self.total,
            "count": self.count,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class _NullInstrument:
    """Shared do-nothing stand-in for every instrument type."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    value = 0.0
    total = 0.0
    count = 0
    mean = 0.0


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """A live namespace of named instruments.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking for an
    existing name returns the same instrument, so independent components
    can share one metric.  Asking for a name that exists with a
    different type raises.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _get_or_create(self, name: str, factory, kind):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name), Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name), Gauge)

    def histogram(
        self, name: str, bounds: Sequence[float] = LATENCY_BOUNDS
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, bounds), Histogram
        )

    def get(self, name: str) -> Optional[object]:
        return self._instruments.get(name)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def to_dict(self) -> Dict[str, object]:
        """Every instrument's state, keyed by name (sorted for diffs)."""
        return {
            name: self._instruments[name].to_dict()
            for name in sorted(self._instruments)
        }


class NullRegistry:
    """The default registry: every instrument is the shared no-op.

    Kept API-compatible with :class:`MetricsRegistry` so instrumented
    components never branch on the registry type — they just hold
    instruments whose update methods do nothing.
    """

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self, name: str, bounds: Sequence[float] = LATENCY_BOUNDS
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def get(self, name: str) -> None:
        return None

    def names(self) -> List[str]:
        return []

    def to_dict(self) -> Dict[str, object]:
        return {}


#: Process-wide shared null registry — the default for every component.
NULL_REGISTRY = NullRegistry()


# ----------------------------------------------------------------------
# Metric catalog
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class MetricSpec:
    """Documentation for one observable metric (``repro metrics list``).

    ``name`` may be a literal column name or a template with a ``<n>``
    placeholder for per-instance series (``subrank<n>_beats``).
    """

    name: str
    #: "sample" | "cumulative" | "instant" | "histogram" | "perf" | "run"
    #: ("run" entries are per-run robustness counters from orchestrator
    #: telemetry/report summaries, not per-epoch obs columns).
    kind: str
    unit: str
    description: str

    def matches(self, column: str) -> bool:
        """True when *column* is an instance of this (template) name."""
        if "<n>" not in self.name:
            return column == self.name
        pattern = re.escape(self.name).replace(re.escape("<n>"), r"\d+")
        return re.fullmatch(pattern, column) is not None


#: Every metric the simulator's observability probe can emit, in the
#: order the paper's evaluation discusses them.  Cumulative columns are
#: stored as per-epoch deltas in :class:`repro.obs.ObsRecord`; instant
#: columns raw at the sample point.  ``perf``-kind entries are not obs
#: columns at all: they are the fast-path's non-serialised telemetry
#: (``SimulationResult.perf``), surfaced by ``repro profile`` — listed
#: here so ``repro metrics list`` documents every number the tooling
#: can print.
METRIC_CATALOG: Tuple[MetricSpec, ...] = (
    MetricSpec("cycle", "sample", "bus cycles",
               "epoch sample time on the memory-bus clock"),
    MetricSpec("bytes_transferred", "cumulative", "bytes",
               "data moved over the memory bus"),
    MetricSpec("forwarded_reads", "cumulative", "requests",
               "reads answered from the write queue without a bus trip"),
    MetricSpec("llc_hits", "cumulative", "accesses",
               "last-level cache hits"),
    MetricSpec("llc_misses", "cumulative", "accesses",
               "last-level cache misses (memory traffic generators)"),
    MetricSpec("demand_reads", "cumulative", "requests",
               "demand read requests issued to the controller"),
    MetricSpec("demand_writes", "cumulative", "requests",
               "demand write requests issued to the controller"),
    MetricSpec("corrective_reads", "cumulative", "requests",
               "extra reads issued after a wrong compressibility guess"),
    MetricSpec("copr_predictions", "cumulative", "predictions",
               "COPR compressibility predictions made"),
    MetricSpec("copr_correct", "cumulative", "predictions",
               "COPR predictions that matched the line's true state"),
    MetricSpec("blem_writes", "cumulative", "writes",
               "lines written through the BLEM embedded-metadata path"),
    MetricSpec("blem_collisions", "cumulative", "events",
               "BLEM marker collisions on reads and writes"),
    MetricSpec("metadata_accesses", "cumulative", "accesses",
               "metadata-cache lookups"),
    MetricSpec("metadata_hits", "cumulative", "accesses",
               "metadata-cache lookups served without a memory access"),
    MetricSpec("metadata_installs", "cumulative", "requests",
               "metadata fills from memory (misses that cost a read)"),
    MetricSpec("metadata_writebacks", "cumulative", "requests",
               "dirty metadata evictions written back to memory"),
    MetricSpec("compressible_reads", "cumulative", "requests",
               "demand reads whose line compresses to <= 30 B"),
    MetricSpec("subrank<n>_beats", "cumulative", "data beats",
               "data-bus beats served by sub-rank <n>"),
    MetricSpec("channel<n>_queue", "instant", "requests",
               "pending reads + writes queued at channel <n>"),
    MetricSpec("controller.read_latency_bus_cycles", "histogram",
               "bus cycles",
               "end-to-end demand-read latency distribution "
               "(to_dict carries p50/p95/p99 bucket estimates)"),
    MetricSpec("scheduler.horizon_skips", "perf", "advance calls",
               "channel advances answered by the event-horizon skip "
               "without touching the issue loop (REPRO_FASTPATH)"),
    MetricSpec("scheduler.bucket_hits", "perf", "lookups",
               "per-(rank, bank) candidate-cache hits inside best-"
               "candidate computes (REPRO_FASTPATH)"),
    MetricSpec("scheduler.bucket_misses", "perf", "lookups",
               "candidate-cache misses — buckets recomputed by the "
               "scalar FR-FCFS scan (REPRO_FASTPATH)"),
    MetricSpec("scheduler.kernel_batches", "perf", "passes",
               "vector-plane candidate selection passes; 0 whenever the "
               "struct-of-arrays plane is unarmed (REPRO_VECTOR and a "
               "large enough organization)"),
    MetricSpec("scheduler.kernel_lanes", "perf", "lanes",
               "active candidate lanes evaluated across those passes "
               "(lanes/batches ~ mean bank-level parallelism seen by "
               "the vector scheduler)"),
    MetricSpec("chaos.injections", "run", "faults",
               "total deterministic fault injections delivered by the "
               "run's chaos plan (report summary, chaos block)"),
    MetricSpec("chaos.injections.<site>", "run", "faults",
               "per-site injection counts keyed by chaos site name "
               "(e.g. transport.corrupt, worker.crash) in the report "
               "summary's chaos block"),
    MetricSpec("cluster.quarantined_agents", "run", "agents",
               "agents removed from dispatch by the circuit breaker "
               "(checksum failures or repeated reconnect strikes)"),
    MetricSpec("cluster.backoff_retries", "run", "dials",
               "reconnect probes to dead agents scheduled under capped "
               "exponential backoff with deterministic jitter"),
    MetricSpec("cache.corrupt_entries", "run", "entries",
               "present-but-unusable result-cache entries detected "
               "(checksum/schema failures), unlinked and counted as "
               "misses"),
    MetricSpec("cache.put_errors", "run", "stores",
               "result-cache stores swallowed on filesystem failure "
               "(disk full) — the sweep continues uncached"),
)


def find_metric(column: str) -> Optional[MetricSpec]:
    """The catalog entry describing *column*, template-aware."""
    for spec in METRIC_CATALOG:
        if spec.matches(column):
            return spec
    return None


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BOUNDS",
    "METRIC_CATALOG",
    "MetricSpec",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "find_metric",
]
