"""Windowed time-series sampling into a compact columnar record.

The sampler snapshots a probe function at fixed epoch boundaries (every
N memory-bus cycles).  The probe returns two dicts:

* **cumulative** counters (bytes transferred, LLC misses, COPR
  predictions, ...) — stored as per-epoch *deltas*, so each column reads
  as "activity during this epoch";
* **instant** gauges (queue depths, ...) — stored raw at the sample
  point.

Storage is columnar (parallel lists keyed by column name) rather than a
list of row dicts: a 10k-epoch record with 20 columns is 20 lists, not
10k dicts, and serialises compactly.  The ``cycle`` column records each
sample's bus cycle; the final sample may close a partial epoch (its
``cycle`` delta is then shorter than ``epoch_cycles``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

#: Version of the ``ObsRecord.to_dict`` payload.
OBS_SCHEMA_VERSION = 1

Probe = Callable[[], Tuple[Dict[str, float], Dict[str, float]]]


@dataclass
class ObsRecord:
    """The serialisable observability payload of one simulated run.

    ``columns`` holds the per-epoch time series (cumulative columns as
    deltas, instant columns raw, plus the ``cycle`` sample times);
    ``trace_events`` carries the tracer's Chrome trace events when a
    tracer ran alongside the sampler.
    """

    epoch_cycles: float
    columns: Dict[str, List[float]] = field(default_factory=dict)
    trace_events: List[dict] = field(default_factory=list)
    trace_dropped: int = 0

    @property
    def num_epochs(self) -> int:
        return len(self.columns.get("cycle", ()))

    def series(self, name: str) -> List[float]:
        """One column's per-epoch values (empty when never sampled)."""
        return list(self.columns.get(name, ()))

    def epoch_durations(self) -> List[float]:
        """Bus cycles covered by each epoch (the last may be partial)."""
        cycles = self.columns.get("cycle", [])
        durations: List[float] = []
        previous = 0.0
        for cycle in cycles:
            durations.append(cycle - previous)
            previous = cycle
        return durations

    def rate(self, numerator: str, denominator: str) -> List[float]:
        """Per-epoch ratio of two columns (0.0 where the denominator is 0)."""
        top = self.columns.get(numerator, [])
        bottom = self.columns.get(denominator, [])
        return [
            (a / b if b else 0.0) for a, b in zip(top, bottom)
        ]

    def per_cycle(self, name: str) -> List[float]:
        """A column divided by its epoch duration (e.g. bytes/cycle)."""
        values = self.columns.get(name, [])
        return [
            (v / d if d > 0 else 0.0)
            for v, d in zip(values, self.epoch_durations())
        ]

    def summary(self) -> Dict[str, object]:
        """Whole-run aggregates, compact enough for telemetry JSONL."""
        out: Dict[str, object] = {
            "epochs": self.num_epochs,
            "epoch_cycles": self.epoch_cycles,
        }
        columns = self.columns
        predictions = sum(columns.get("copr_predictions", ()))
        if predictions:
            out["copr_accuracy"] = sum(columns.get("copr_correct", ())) / predictions
        total_cycles = columns["cycle"][-1] if columns.get("cycle") else 0.0
        transferred = sum(columns.get("bytes_transferred", ()))
        if total_cycles > 0:
            out["bandwidth_bytes_per_cycle"] = transferred / total_cycles
        accesses = sum(columns.get("llc_hits", ())) + sum(
            columns.get("llc_misses", ())
        )
        if accesses:
            out["llc_miss_rate"] = sum(columns.get("llc_misses", ())) / accesses
        if self.trace_events or self.trace_dropped:
            out["trace_events"] = len(self.trace_events)
            out["trace_dropped"] = self.trace_dropped
        return out

    # -- serialisation --------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "obs_schema_version": OBS_SCHEMA_VERSION,
            "epoch_cycles": self.epoch_cycles,
            "columns": {
                name: list(values)
                for name, values in sorted(self.columns.items())
            },
            "trace_events": list(self.trace_events),
            "trace_dropped": self.trace_dropped,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ObsRecord":
        version = payload.get("obs_schema_version")
        if version != OBS_SCHEMA_VERSION:
            raise ValueError(
                f"ObsRecord schema mismatch: payload version {version!r}, "
                f"expected {OBS_SCHEMA_VERSION}"
            )
        return cls(
            epoch_cycles=payload["epoch_cycles"],
            columns={
                name: list(values)
                for name, values in payload["columns"].items()
            },
            trace_events=list(payload["trace_events"]),
            trace_dropped=payload["trace_dropped"],
        )


class TimeSeriesSampler:
    """Samples a probe at epoch boundaries into columnar series."""

    def __init__(self, epoch_cycles: float, probe: Probe) -> None:
        if epoch_cycles <= 0:
            raise ValueError("epoch_cycles must be positive")
        self._epoch = float(epoch_cycles)
        self._probe = probe
        self._next = self._epoch
        self._last_cumulative: Dict[str, float] = {}
        self._columns: Dict[str, List[float]] = {"cycle": []}
        self._last_sampled = 0.0

    @property
    def epoch_cycles(self) -> float:
        return self._epoch

    def tick(self, now: float) -> None:
        """Sample every epoch boundary at or before *now*.

        The first comparison is the entire cost on the simulator's hot
        path between boundaries.
        """
        while now >= self._next:
            self._sample(self._next)
            self._next += self._epoch

    def finalize(self, now: float) -> None:
        """Close the trailing partial epoch at the end of the run."""
        if now > self._last_sampled:
            self._sample(now)

    def _sample(self, at: float) -> None:
        cumulative, instant = self._probe()
        columns = self._columns
        columns["cycle"].append(at)
        previous = self._last_cumulative
        for name, value in cumulative.items():
            columns.setdefault(name, []).append(value - previous.get(name, 0.0))
        for name, value in instant.items():
            columns.setdefault(name, []).append(value)
        self._last_cumulative = dict(cumulative)
        self._last_sampled = at

    def record(
        self,
        trace_events: Optional[List[dict]] = None,
        trace_dropped: int = 0,
    ) -> ObsRecord:
        """Freeze the sampled series into an :class:`ObsRecord`."""
        return ObsRecord(
            epoch_cycles=self._epoch,
            columns={name: list(values) for name, values in self._columns.items()},
            trace_events=list(trace_events) if trace_events else [],
            trace_dropped=trace_dropped,
        )


__all__ = ["OBS_SCHEMA_VERSION", "ObsRecord", "TimeSeriesSampler"]
