"""``repro.obs`` — in-simulation and fleet observability.

Simulation layers, all with near-zero cost when disabled (the default):

* :mod:`repro.obs.metrics` — named counters/gauges/histograms behind a
  :class:`MetricsRegistry`; the shared :data:`NULL_REGISTRY` hands out
  no-op instruments so instrumented hot paths stay free by default.
* :mod:`repro.obs.timeseries` — an epoch-boundary sampler producing the
  columnar :class:`ObsRecord` attached to ``SimulationResult.obs``.
* :mod:`repro.obs.tracer` — sampled request-lifecycle tracing exported
  as Chrome trace-event JSON (Perfetto-loadable).

Fleet layers, observing the orchestration *around* simulations (same
zero-cost-when-off discipline, mirrored by :data:`NULL_SPAN_LOG`):

* :mod:`repro.obs.fleet` — per-job-attempt orchestration spans across
  the local pool and remote cluster agents, merged onto one coordinator
  timeline (clock-offset estimation) and exported as a Perfetto trace.
* :mod:`repro.obs.prometheus` — Prometheus text exposition (0.0.4) for
  any :class:`MetricsRegistry`.
* :mod:`repro.obs.statusplane` — a sampling thread plus stdlib HTTP
  server publishing ``/status.json`` and ``/metrics`` for live runs.
* :mod:`repro.obs.top` — the ``repro top`` terminal dashboard.

The :class:`Observability` hub bundles one registry plus (optionally)
one tracer; ``run_benchmark(obs=...)`` accepts either an
:class:`ObsConfig` (the hub is built internally) or an
:class:`Observability` instance (the caller keeps the tracer handle,
e.g. to write the trace file afterwards).  ``ObsConfig`` is a frozen
dataclass so it can ride through orchestrator job specs and cache keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    METRIC_CATALOG,
    MetricSpec,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    find_metric,
)
from repro.obs.fleet import FleetConfig, NULL_SPAN_LOG, SpanLog
from repro.obs.timeseries import OBS_SCHEMA_VERSION, ObsRecord, TimeSeriesSampler
from repro.obs.tracer import EventTracer


@dataclass(frozen=True)
class ObsConfig:
    """Observability settings for one run (pure data; cache-key safe)."""

    #: Sampling window in memory-bus cycles.
    epoch_cycles: float = 2048.0
    #: Record request lifecycles (off leaves only the time series).
    trace: bool = True
    #: Trace every Nth LLC miss (1 = all).
    trace_sample_every: int = 1
    #: Hard cap on stored trace events; overflow increments ``dropped``.
    trace_capacity: int = 65536

    def __post_init__(self) -> None:
        if self.epoch_cycles <= 0:
            raise ValueError("epoch_cycles must be positive")
        if self.trace_sample_every < 1:
            raise ValueError("trace_sample_every must be >= 1")
        if self.trace_capacity < 1:
            raise ValueError("trace_capacity must be >= 1")


class Observability:
    """One run's live observability context: registry + optional tracer."""

    def __init__(self, config: Optional[ObsConfig] = None) -> None:
        self.config = config if config is not None else ObsConfig()
        self.registry = MetricsRegistry()
        self.tracer: Optional[EventTracer] = (
            EventTracer(
                sample_every=self.config.trace_sample_every,
                capacity=self.config.trace_capacity,
            )
            if self.config.trace
            else None
        )


def as_observability(obs) -> Optional[Observability]:
    """Normalise a user-facing ``obs=`` argument to a hub (or ``None``).

    Accepts ``None`` (observability off), an :class:`ObsConfig`, or an
    already-built :class:`Observability`.
    """
    if obs is None:
        return None
    if isinstance(obs, Observability):
        return obs
    if isinstance(obs, ObsConfig):
        return Observability(obs)
    raise TypeError(
        f"obs must be None, ObsConfig or Observability, got "
        f"{type(obs).__name__}"
    )


__all__ = [
    "Counter",
    "EventTracer",
    "FleetConfig",
    "Gauge",
    "Histogram",
    "METRIC_CATALOG",
    "MetricSpec",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "NULL_SPAN_LOG",
    "OBS_SCHEMA_VERSION",
    "ObsConfig",
    "ObsRecord",
    "Observability",
    "SpanLog",
    "TimeSeriesSampler",
    "as_observability",
    "find_metric",
]
