"""Structured event tracing of sampled request lifecycles.

The tracer follows individual LLC misses through the pipeline — COPR
prediction, sub-rank opens (ACT), BLEM header decode, misprediction
correction, completion — and exports the record as Chrome trace-event
JSON (the ``traceEvents`` array format), loadable in Perfetto or
``chrome://tracing``.

Timestamps are memory-bus cycles used directly as the trace ``ts``
microsecond field: the viewer's absolute units are meaningless for a
simulator, only relative spacing matters.

Two caps keep traces bounded on long runs:

* ``sample_every`` — only every Nth LLC miss starts a traced lifecycle
  (1 = trace everything);
* ``capacity`` — a hard event-count cap; events past it are counted in
  :attr:`dropped` instead of stored, so memory use never grows with
  simulated time.

Each traced request gets its own ``tid`` (one track per lifecycle) under
a single ``pid``; events within one request therefore never interleave
with another's on the same track.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: ``pid`` used for every simulator track.
TRACE_PID = 0


class EventTracer:
    """Records sampled request lifecycles as Chrome trace events."""

    def __init__(self, sample_every: int = 1, capacity: int = 65536) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sample_every = sample_every
        self.capacity = capacity
        self.events: List[dict] = []
        self.dropped = 0
        self._seen = 0
        self._next_id = 0

    @property
    def seen(self) -> int:
        """LLC misses offered to the sampler (traced or not)."""
        return self._seen

    @property
    def traced(self) -> int:
        """Lifecycles actually given a track."""
        return self._next_id

    # ------------------------------------------------------------------
    # Lifecycle entry point
    # ------------------------------------------------------------------

    def sample_request(self, address: int, cycle: float) -> Optional[int]:
        """Decide whether to trace the LLC miss at *address*.

        Returns a trace id (the lifecycle's track) when sampled, else
        ``None``.  The miss itself is recorded as the track's first
        event.
        """
        seen = self._seen
        self._seen = seen + 1
        if seen % self.sample_every != 0:
            return None
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return None
        trace_id = self._next_id
        self._next_id = trace_id + 1
        self.instant(trace_id, "llc_miss", cycle, address=address)
        return trace_id

    # ------------------------------------------------------------------
    # Event emission
    # ------------------------------------------------------------------

    def instant(self, trace_id: int, name: str, cycle: float, **args) -> None:
        """A zero-duration marker on the request's track."""
        self._append({
            "name": name,
            "ph": "i",
            "ts": cycle,
            "s": "t",  # thread-scoped instant
            "pid": TRACE_PID,
            "tid": trace_id,
            "args": args,
        })

    def span(self, trace_id: int, name: str, begin: float, end: float,
             **args) -> None:
        """A complete ("X") event covering ``[begin, end]`` bus cycles."""
        self._append({
            "name": name,
            "ph": "X",
            "ts": begin,
            "dur": max(0.0, end - begin),
            "pid": TRACE_PID,
            "tid": trace_id,
            "args": args,
        })

    def _append(self, event: dict) -> None:
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(event)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def chrome_trace(self) -> dict:
        """The trace as a Chrome/Perfetto JSON object.

        Events are sorted by ``ts`` (stable, so same-cycle events keep
        emission order), which guarantees monotonically non-decreasing
        timestamps per track.
        """
        ordered = sorted(self.events, key=lambda event: event["ts"])
        metadata = [{
            "name": "process_name",
            "ph": "M",
            "ts": 0.0,
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"name": "memory-system"},
        }]
        return {
            "traceEvents": metadata + ordered,
            "displayTimeUnit": "ns",
            "otherData": {
                "sampled_misses": self._seen,
                "traced_requests": self._next_id,
                "dropped_events": self.dropped,
                "sample_every": self.sample_every,
            },
        }

    def write_json(self, path) -> None:
        import json

        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle)


__all__ = ["EventTracer", "TRACE_PID"]
