"""Prometheus text exposition (format 0.0.4) from metric instruments.

Renders a :class:`repro.obs.metrics.MetricsRegistry` — counters, gauges
and histograms — as the plain-text format every Prometheus-compatible
scraper understands, without depending on ``prometheus_client``.

Instrument names may carry labels inline using the exposition's own
syntax, e.g. ``repro_fleet_jobs_total{status="done"}``: the base name
identifies the metric family (one ``# HELP``/``# TYPE`` header per
family, however many labelled children exist) and the label set is
emitted per sample.  Names are sanitised to the legal charset
(``[a-zA-Z_:][a-zA-Z0-9_:]*``) and label values escaped per the spec
(backslash, double-quote and newline).

Histograms expand to the conventional ``_bucket{le=...}`` series
(cumulative counts, closed by ``le="+Inf"``) plus ``_sum`` and
``_count``.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import Counter, Gauge, Histogram

#: Content-Type a conforming scrape endpoint must answer with.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_INLINE_LABELS_RE = re.compile(r"^(?P<base>[^{]+)\{(?P<labels>.*)\}$")
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


def sanitize_name(name: str) -> str:
    """Map an arbitrary instrument name onto the legal metric charset."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not _NAME_RE.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition spec."""
    return (
        value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')
    )


def escape_help(text: str) -> str:
    """Escape a ``# HELP`` line (backslash and newline only)."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


def format_value(value: float) -> str:
    """Render one sample value (integers without a trailing ``.0``)."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def parse_inline_labels(name: str) -> Tuple[str, Dict[str, str]]:
    """Split ``family{label="value",...}`` into ``(family, labels)``.

    Label values arrive already unescaped (the registry stores plain
    strings); escaping happens once at render time.  A name without a
    ``{...}`` suffix returns an empty label dict.
    """
    match = _INLINE_LABELS_RE.match(name)
    if match is None:
        return sanitize_name(name), {}
    labels: Dict[str, str] = {}
    for pair in _LABEL_PAIR_RE.finditer(match.group("labels")):
        raw = pair.group("value")
        value = raw.replace(r"\"", '"').replace(r"\n", "\n")
        value = value.replace("\\\\", "\\")
        labels[pair.group("name")] = value
    return sanitize_name(match.group("base")), labels


def render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    parts = []
    for key in sorted(labels):
        name = key if _LABEL_NAME_RE.match(key) else sanitize_name(key)
        parts.append(f'{name}="{escape_label_value(str(labels[key]))}"')
    return "{" + ",".join(parts) + "}"


def _type_of(instrument) -> str:
    if isinstance(instrument, Counter):
        return "counter"
    if isinstance(instrument, Gauge):
        return "gauge"
    if isinstance(instrument, Histogram):
        return "histogram"
    return "untyped"


def exposition(
    registry,
    help_texts: Optional[Dict[str, str]] = None,
) -> str:
    """The registry's full scrape payload, families sorted by name.

    *help_texts* maps family base names to ``# HELP`` strings; families
    without an entry get a generic line.  The returned text always ends
    with a newline (scrapers treat a truncated final line as an error).
    """
    help_texts = help_texts or {}
    families: Dict[str, Dict[str, object]] = {}
    for name in registry.names():
        instrument = registry.get(name)
        base, labels = parse_inline_labels(name)
        family = families.setdefault(
            base, {"type": _type_of(instrument), "samples": []}
        )
        if family["type"] != _type_of(instrument):
            family["type"] = "untyped"  # mixed family: be honest
        family["samples"].append((labels, instrument))

    lines: List[str] = []
    for base in sorted(families):
        family = families[base]
        help_text = help_texts.get(base, f"repro metric {base}")
        lines.append(f"# HELP {base} {escape_help(help_text)}")
        lines.append(f"# TYPE {base} {family['type']}")
        for labels, instrument in family["samples"]:
            if isinstance(instrument, Histogram):
                lines.extend(_histogram_lines(base, labels, instrument))
            else:
                lines.append(
                    f"{base}{render_labels(labels)} "
                    f"{format_value(instrument.value)}"
                )
    return "\n".join(lines) + "\n" if lines else "\n"


def _histogram_lines(base: str, labels: Dict[str, str],
                     histogram: Histogram) -> List[str]:
    lines: List[str] = []
    cumulative = 0
    for bound, count in zip(histogram.bounds, histogram.buckets):
        cumulative += count
        bucket_labels = dict(labels)
        bucket_labels["le"] = format_value(bound)
        lines.append(
            f"{base}_bucket{render_labels(bucket_labels)} {cumulative}"
        )
    inf_labels = dict(labels)
    inf_labels["le"] = "+Inf"
    lines.append(
        f"{base}_bucket{render_labels(inf_labels)} {histogram.count}"
    )
    lines.append(
        f"{base}_sum{render_labels(labels)} "
        f"{format_value(histogram.total)}"
    )
    lines.append(f"{base}_count{render_labels(labels)} {histogram.count}")
    return lines


__all__ = [
    "CONTENT_TYPE",
    "escape_help",
    "escape_label_value",
    "exposition",
    "format_value",
    "parse_inline_labels",
    "render_labels",
    "sanitize_name",
]
