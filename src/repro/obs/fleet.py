"""Fleet observability: orchestration spans across pool and cluster.

Where :mod:`repro.obs.tracer` follows one simulated request *inside* a
run, this module follows one *job attempt* across the orchestration
layer: how long it sat queued, how long dispatch took, where it ran
(local worker or remote agent), whether it retried or was speculated,
and how long cache probes and workload-bank attaches cost.  Every event
lands in a :class:`SpanLog` — an append-only JSONL stream under the run
directory (``<run-dir>/spans.jsonl``) plus an in-memory copy — and
``repro trace --run <run-dir>`` merges the whole distributed sweep into
one Chrome/Perfetto trace reusing the PR 3 :class:`EventTracer` format.

Span taxonomy (``phase`` values)::

    queued        job waiting for a worker slot (per attempt)
    dispatch      backend.launch() handoff (fork / pipe send / TCP send)
    run           attempt executing (coordinator-observed wall)
    worker_run    the worker-process slice of ``run`` (excludes IPC)
    cache_probe   coordinator or agent result-cache lookup
    bank_attach   warm worker attaching the zero-copy workload bank
    agent_queue   dispatched job waiting inside a remote agent
    agent_run     attempt executing, agent-side clock (mapped)

plus instant marks ``result`` / ``retry`` / ``failed`` / ``cached`` /
``speculated`` / ``redispatched``, and ``meta`` records carrying
per-agent clock-offset estimates.

**Clock sync.**  Local workers share the coordinator's
``CLOCK_MONOTONIC``, so their timestamps merge directly.  Remote agents
run their own monotonic clock; the coordinator estimates each agent's
offset from ping/pong round trips (:func:`estimate_clock_offset`,
Cristian's algorithm: the minimum-RTT sample bounds the error by
RTT/2) and maps agent timestamps onto its own timeline with
:func:`map_remote_time` before recording.  All spans therefore share
one time base and one merged trace.

Everything here is zero-cost when disabled: the shared
:data:`NULL_SPAN_LOG` swallows every call, mirroring the
``NULL_REGISTRY`` discipline, and no file is created.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.tracer import EventTracer

#: Version stamp on every spans.jsonl record.
SPANS_SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# Clock-offset estimation (coordinator <-> agent)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ClockSample:
    """One ping/pong round trip: local send/receive + remote clock."""

    sent: float      #: coordinator monotonic at ping send
    received: float  #: coordinator monotonic at pong receive
    remote: float    #: agent monotonic stamped inside the pong

    @property
    def rtt(self) -> float:
        return self.received - self.sent


def estimate_clock_offset(
    samples: Sequence[ClockSample],
) -> Tuple[float, float]:
    """``(offset, rtt)`` such that ``local = remote - offset``.

    Uses the minimum-RTT sample (ties broken by sample order, so the
    estimate is deterministic for a given sample list): the remote clock
    read happened within that round trip, so assuming it landed at the
    midpoint bounds the error by RTT/2 — the classic Cristian/NTP
    argument.  Raises ``ValueError`` on an empty sample list.
    """
    if not samples:
        raise ValueError("cannot estimate a clock offset from no samples")
    best = min(samples, key=lambda sample: sample.rtt)
    midpoint = best.sent + best.rtt / 2.0
    return best.remote - midpoint, best.rtt


def map_remote_time(remote_t: float, offset: float) -> float:
    """An agent-clock timestamp on the coordinator's monotonic timeline."""
    return remote_t - offset


# ----------------------------------------------------------------------
# Span recording
# ----------------------------------------------------------------------

class SpanLog:
    """Append-only orchestration-span stream for one run.

    Timestamps are coordinator ``time.monotonic()`` values; records
    store them relative to the log's epoch (``t=0`` at construction) so
    independent runs diff cleanly.  Thread-safe: the scheduling loop,
    the cluster reader threads and the heartbeat thread all record into
    one log.
    """

    enabled = True

    def __init__(self, path=None, clock=time.monotonic) -> None:
        self._path = path
        self._clock = clock
        self._epoch = clock()
        self._lock = threading.Lock()
        self.records: List[dict] = []
        if path is not None:
            open(path, "w", encoding="utf-8").close()

    # -- time -----------------------------------------------------------

    def now(self) -> float:
        """The current coordinator-monotonic timestamp (absolute)."""
        return self._clock()

    def rel(self, t: float) -> float:
        """An absolute monotonic timestamp relative to the log epoch."""
        return t - self._epoch

    # -- recording ------------------------------------------------------

    def span(self, phase: str, t0: float, t1: float, key: str = "",
             job: str = "", index: Optional[int] = None,
             attempt: Optional[int] = None, agent: Optional[str] = None,
             **args) -> None:
        """One completed phase of one job attempt (absolute times)."""
        self._write({
            "event": "span",
            "phase": phase,
            "t0": round(self.rel(t0), 6),
            "t1": round(self.rel(max(t0, t1)), 6),
            "key": key,
            "job": job,
            "index": index,
            "attempt": attempt,
            "agent": agent,
            **({"args": args} if args else {}),
        })

    def mark(self, phase: str, t: Optional[float] = None, key: str = "",
             job: str = "", index: Optional[int] = None,
             attempt: Optional[int] = None, agent: Optional[str] = None,
             **args) -> None:
        """An instant event (result / retry / speculated / ...)."""
        stamp = self._clock() if t is None else t
        self._write({
            "event": "mark",
            "phase": phase,
            "t": round(self.rel(stamp), 6),
            "key": key,
            "job": job,
            "index": index,
            "attempt": attempt,
            "agent": agent,
            **({"args": args} if args else {}),
        })

    def meta(self, kind: str, **fields) -> None:
        """A non-span annotation (e.g. one agent's clock offset)."""
        self._write({"event": "meta", "kind": kind, **fields})

    def remote_phases(self, phases: Dict[str, Sequence[float]],
                      offset: float, key: str = "", job: str = "",
                      index: Optional[int] = None,
                      attempt: Optional[int] = None,
                      agent: Optional[str] = None) -> None:
        """Record agent/worker-side ``{phase: [t0, t1]}`` pairs.

        *offset* maps the remote clock onto the coordinator timeline
        (0.0 for local workers sharing CLOCK_MONOTONIC).
        """
        for phase, pair in sorted(phases.items()):
            try:
                t0, t1 = float(pair[0]), float(pair[1])
            except (TypeError, ValueError, IndexError):
                continue  # a malformed phase must never fail the run
            self.span(
                phase, map_remote_time(t0, offset),
                map_remote_time(t1, offset), key=key, job=job,
                index=index, attempt=attempt, agent=agent,
            )

    def _write(self, record: dict) -> None:
        record = {
            k: v for k, v in record.items() if v is not None and v != ""
        }
        record["v"] = SPANS_SCHEMA_VERSION
        with self._lock:
            self.records.append(record)
            if self._path is not None:
                with open(self._path, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(record, sort_keys=True) + "\n")


class _NullSpanLog:
    """Shared no-op span log — the default when fleet tracing is off."""

    enabled = False
    records: List[dict] = []

    def now(self) -> float:
        return 0.0

    def rel(self, t: float) -> float:
        return 0.0

    def span(self, *args, **kwargs) -> None:
        pass

    def mark(self, *args, **kwargs) -> None:
        pass

    def meta(self, *args, **kwargs) -> None:
        pass

    def remote_phases(self, *args, **kwargs) -> None:
        pass


#: Process-wide shared no-op span log.
NULL_SPAN_LOG = _NullSpanLog()


# ----------------------------------------------------------------------
# Fleet configuration (what the CLI hands the orchestrator)
# ----------------------------------------------------------------------

@dataclass
class FleetConfig:
    """Opt-in fleet-observability knobs for one orchestrated run.

    The default instance is inert: no spans, no status server, no new
    files in the run directory — byte-identical behaviour to a build
    without the subsystem.
    """

    #: Record orchestration spans to ``<run-dir>/spans.jsonl``.
    spans: bool = False
    #: Explicit spans path (overrides the run-dir default; required for
    #: span recording on non-durable runs).
    spans_path: Optional[object] = None
    #: Serve ``/status.json`` + ``/metrics`` on this port (0 = let the
    #: OS choose; the resolved URL is announced).  None disables.
    status_port: Optional[int] = None
    status_host: str = "127.0.0.1"
    #: Seconds between status-plane samples.
    sample_interval_s: float = 0.5
    #: Where the resolved status URL is announced (tests capture it).
    announce: Optional[object] = None

    @property
    def active(self) -> bool:
        return bool(self.spans) or self.status_port is not None


# ----------------------------------------------------------------------
# Merged Perfetto export
# ----------------------------------------------------------------------

def load_span_records(run_dir) -> List[dict]:
    """Parse ``<run-dir>/spans.jsonl`` (tolerating trailing garbage)."""
    import pathlib

    path = pathlib.Path(run_dir) / "spans.jsonl"
    if not path.exists():
        return []
    records = []
    for line in path.read_text(encoding="utf-8").splitlines():
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict):
            records.append(record)
    return records


def crash_dump_index(run_dir) -> Dict[str, str]:
    """``{job key: latest crash-dump path}`` from the run manifest."""
    import pathlib

    path = pathlib.Path(run_dir) / "manifest.jsonl"
    dumps: Dict[str, str] = {}
    if not path.exists():
        return dumps
    for line in path.read_text(encoding="utf-8").splitlines():
        try:
            entry = json.loads(line)
        except ValueError:
            continue
        if isinstance(entry, dict) and entry.get("crash_dump"):
            dumps[entry.get("key", "")] = entry["crash_dump"]
    return dumps


#: Microseconds per span-log second in the exported trace.  Perfetto's
#: absolute units are meaningless for orchestration (as for bus cycles
#: in the in-sim tracer); seconds-as-microseconds keeps digits readable.
_EXPORT_US_PER_S = 1_000_000.0


def export_fleet_trace(
    records: Iterable[dict],
    crash_dumps: Optional[Dict[str, str]] = None,
) -> dict:
    """Merge span records into one Chrome/Perfetto trace object.

    Reuses :class:`EventTracer` so the export format is exactly the
    in-simulation tracer's (``traceEvents`` array, ``X``/``i`` phases,
    metadata ``process_name`` entries).  Tracks (``tid``) are job
    indices; executors (the coordinator plus each named agent) become
    processes (``pid``) so Perfetto groups one lane per machine.
    Failed-job marks are cross-linked to their crash dumps by job key.
    """
    crash_dumps = crash_dumps or {}
    records = list(records)
    agents = sorted({
        r["agent"] for r in records
        if r.get("agent") and r.get("event") in ("span", "mark")
    })
    pids = {agent: index + 1 for index, agent in enumerate(agents)}

    tracer = EventTracer(capacity=max(len(records) * 2 + 16, 1024))
    tracks: Dict[Tuple[int, object], int] = {}

    def track_of(pid: int, record: dict) -> int:
        identity = record.get("index", record.get("key", 0))
        return tracks.setdefault((pid, identity), len(tracks))

    offsets: List[dict] = []
    for record in records:
        event = record.get("event")
        if event == "meta":
            if record.get("kind") == "agent_clock":
                offsets.append(record)
            continue
        pid = pids.get(record.get("agent"), 0)
        tid = record.get("index")
        tid = track_of(pid, record) if tid is None else int(tid)
        args = dict(record.get("args", ()))
        for carry in ("key", "job", "attempt", "agent"):
            if record.get(carry) is not None:
                args[carry] = record[carry]
        if record.get("phase") == "failed":
            dump = crash_dumps.get(record.get("key", ""))
            if dump:
                args["crash_dump"] = dump
        if event == "span":
            t0 = float(record.get("t0", 0.0)) * _EXPORT_US_PER_S
            t1 = float(record.get("t1", 0.0)) * _EXPORT_US_PER_S
            tracer.span(tid, record.get("phase", "span"), t0, t1, **args)
        elif event == "mark":
            stamp = float(record.get("t", 0.0)) * _EXPORT_US_PER_S
            tracer.instant(tid, record.get("phase", "mark"), stamp, **args)
        # pid is attached below (EventTracer stamps a constant pid)
        tracer.events[-1]["pid"] = pid

    trace = tracer.chrome_trace()
    # One process lane per executor, named like the in-sim tracer names
    # its single "memory-system" process.
    metadata = [{
        "name": "process_name", "ph": "M", "ts": 0.0,
        "pid": 0, "tid": 0, "args": {"name": "orchestrator"},
    }]
    for agent, pid in pids.items():
        metadata.append({
            "name": "process_name", "ph": "M", "ts": 0.0,
            "pid": pid, "tid": 0, "args": {"name": f"agent {agent}"},
        })
    trace["traceEvents"] = metadata + [
        e for e in trace["traceEvents"] if e.get("ph") != "M"
    ]
    trace["otherData"] = {
        "kind": "repro-fleet-spans",
        "spans_schema_version": SPANS_SCHEMA_VERSION,
        "records": len(records),
        "agents": agents,
        "clock_offsets": [
            {"agent": o.get("agent"), "offset_s": o.get("offset"),
             "rtt_s": o.get("rtt")}
            for o in offsets
        ],
    }
    return trace


def write_fleet_trace(run_dir, output=None) -> Tuple[object, dict]:
    """Export ``<run-dir>/spans.jsonl`` as Perfetto JSON; returns
    ``(path, trace)``."""
    import pathlib

    run_dir = pathlib.Path(run_dir)
    records = load_span_records(run_dir)
    trace = export_fleet_trace(records, crash_dump_index(run_dir))
    path = pathlib.Path(output) if output else run_dir / "fleet.trace.json"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle)
    return path, trace


__all__ = [
    "ClockSample",
    "FleetConfig",
    "NULL_SPAN_LOG",
    "SPANS_SCHEMA_VERSION",
    "SpanLog",
    "crash_dump_index",
    "estimate_clock_offset",
    "export_fleet_trace",
    "load_span_records",
    "map_remote_time",
    "write_fleet_trace",
]
