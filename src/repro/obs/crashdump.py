"""Replayable crash dumps for failed orchestrator grid points.

When a worker attempt fails, the pool writes one JSON dump per attempt
under ``<run-dir>/crashes/``::

    <run-dir>/crashes/<job-key>.attempt<N>.json

containing everything needed to re-run that exact grid point in-process:
the :class:`~repro.orchestrator.jobs.JobSpec` snapshot, the worker's
full traceback, the worker's ``random`` RNG state at failure time, and
the fast-path flag.  ``repro orchestrate replay <key>`` loads the dump
and re-executes the job in the *current* process, where a debugger can
attach (``--pdb`` drops into post-mortem on failure).
"""

from __future__ import annotations

import json
import pathlib
import random
import time
from typing import Dict, List, Optional

CRASHES_DIR = "crashes"


def rng_snapshot() -> Dict[str, object]:
    """JSON-compatible snapshot of the process's ``random`` state."""
    version, internal, gauss = random.getstate()
    return {
        "version": version,
        "internal_state": list(internal),
        "gauss_next": gauss,
    }


def restore_rng(snapshot: Dict[str, object]) -> None:
    """Inverse of :func:`rng_snapshot`."""
    random.setstate((
        snapshot["version"],
        tuple(snapshot["internal_state"]),
        snapshot["gauss_next"],
    ))


def crash_dump_path(run_dir, key: str, attempt: int) -> pathlib.Path:
    return pathlib.Path(run_dir) / CRASHES_DIR / f"{key}.attempt{attempt}.json"


def write_crash_dump(
    run_dir,
    key: str,
    attempt: int,
    job: Dict[str, object],
    error: str,
    traceback_text: Optional[str] = None,
    rng: Optional[Dict[str, object]] = None,
    fastpath_enabled: Optional[bool] = None,
) -> pathlib.Path:
    """Persist one failed attempt; returns the dump path."""
    path = crash_dump_path(run_dir, key, attempt)
    path.parent.mkdir(parents=True, exist_ok=True)
    dump = {
        "ts": time.time(),
        "key": key,
        "attempt": attempt,
        "job": job,
        "error": error,
        "traceback": traceback_text,
        "rng": rng,
        "fastpath": fastpath_enabled,
    }
    path.write_text(json.dumps(dump, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def find_crash_dumps(run_dir, key_prefix: str = "") -> List[pathlib.Path]:
    """Dump files under *run_dir* whose job key starts with *key_prefix*,
    oldest attempt first."""
    crashes = pathlib.Path(run_dir) / CRASHES_DIR
    if not crashes.is_dir():
        return []

    def attempt_of(path: pathlib.Path) -> int:
        suffix = path.stem.rsplit(".attempt", 1)
        return int(suffix[1]) if len(suffix) == 2 and suffix[1].isdigit() else 0

    matches = [
        path for path in crashes.glob("*.json")
        if path.name.startswith(key_prefix)
    ]
    return sorted(matches, key=lambda p: (p.stem.split(".attempt")[0],
                                          attempt_of(p)))


def load_crash_dump(path) -> Dict[str, object]:
    return json.loads(pathlib.Path(path).read_text(encoding="utf-8"))


def replay_from_dump(dump: Dict[str, object], use_pdb: bool = False):
    """Re-run the dumped grid point in this process.

    Restores the worker's RNG state when the dump captured one, then
    executes the job exactly as the worker would have.  With *use_pdb*,
    a failure drops into ``pdb.post_mortem`` instead of propagating.
    """
    from repro.orchestrator.jobs import JobSpec, execute_job

    spec = JobSpec.from_dict(dump["job"])
    rng = dump.get("rng")
    if rng:
        restore_rng(rng)
    try:
        return execute_job(spec)
    except BaseException:
        if use_pdb:
            import pdb
            import sys

            pdb.post_mortem(sys.exc_info()[2])
            return None
        raise


__all__ = [
    "CRASHES_DIR",
    "crash_dump_path",
    "find_crash_dumps",
    "load_crash_dump",
    "replay_from_dump",
    "restore_rng",
    "rng_snapshot",
    "write_crash_dump",
]
