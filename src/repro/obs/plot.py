"""Render an observed run's per-epoch time series with matplotlib.

matplotlib is an *optional* dependency: this module imports it lazily
inside :func:`render_timeseries`, forces the non-interactive ``Agg``
backend when no display is available (headless CI boxes), and raises
:class:`PlotUnavailable` with an actionable message when the package is
missing — callers (``repro metrics --plot``) turn that into a clean
exit instead of a traceback.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence


class PlotUnavailable(RuntimeError):
    """matplotlib is not importable in this environment."""


def _load_matplotlib():
    try:
        import matplotlib
    except ImportError as exc:
        raise PlotUnavailable(
            "plotting needs matplotlib, which is not installed "
            "(pip install matplotlib); the CSV export "
            "(repro metrics --csv) works without it"
        ) from exc
    if not os.environ.get("DISPLAY") and not os.environ.get("MPLBACKEND"):
        # Headless: writing files never needs a GUI event loop.
        matplotlib.use("Agg")
    import matplotlib.pyplot as pyplot

    return pyplot


def render_timeseries(
    record,
    out_path: str,
    columns: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Plot *record*'s per-epoch series into *out_path*; returns the path.

    *record* is a :class:`repro.obs.ObsRecord`.  *columns* selects which
    series to draw (default: every column except the ``cycle`` axis),
    one stacked subplot per column so differently-scaled series stay
    readable.
    """
    pyplot = _load_matplotlib()
    cycles = record.series("cycle")
    if not cycles:
        raise ValueError("record has no epochs to plot")
    names = (
        [name for name in sorted(record.columns) if name != "cycle"]
        if columns is None else list(columns)
    )
    if not names:
        raise ValueError("no columns selected to plot")
    for name in names:
        if name not in record.columns:
            raise KeyError(
                f"unknown column {name!r}; available: "
                f"{sorted(record.columns)}"
            )

    figure, axes = pyplot.subplots(
        len(names), 1, sharex=True,
        figsize=(8.0, max(2.0, 1.6 * len(names))),
    )
    if len(names) == 1:
        axes = [axes]
    for axis, name in zip(axes, names):
        axis.plot(cycles, record.series(name), linewidth=1.0)
        axis.set_ylabel(name, fontsize=7)
        axis.tick_params(labelsize=7)
        axis.grid(True, alpha=0.3)
    axes[-1].set_xlabel("bus cycle")
    if title:
        figure.suptitle(title, fontsize=10)
    figure.tight_layout()
    figure.savefig(out_path, dpi=120)
    pyplot.close(figure)
    return out_path


__all__ = ["PlotUnavailable", "render_timeseries"]
