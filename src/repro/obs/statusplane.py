"""Live status plane: a sampler ring buffer behind a tiny HTTP server.

While a sweep runs, a daemon sampler thread snapshots the orchestration
state — :class:`repro.orchestrator.telemetry.RunCounters` plus
per-worker/per-agent detail (throughput, queue depth, utilization,
cache-hit sources, straggler watermark, RSS) — into a bounded ring
buffer, and a stdlib-only HTTP server exposes it:

``/status.json``
    the latest snapshot plus a short ``history`` of
    ``[elapsed_s, finished]`` pairs, for machines and ``repro top``;
``/metrics``
    the same snapshot rendered as Prometheus text exposition
    (:mod:`repro.obs.prometheus`), for any scraper.

The plane only exists when the run asked for it (``--status-port``);
with no port configured nothing here is constructed, no thread starts
and no socket binds — the zero-cost-when-off discipline the rest of
``repro.obs`` follows.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional

from repro.obs import prometheus
from repro.obs.metrics import MetricsRegistry

#: Version stamp on every ``/status.json`` payload.
STATUS_SCHEMA_VERSION = 1

#: Ring-buffer capacity: at the default 0.5 s sample interval this keeps
#: the last two minutes of progress history.
DEFAULT_HISTORY = 240

#: Histogram bounds for per-point wall seconds (simulated grid points
#: span ~0.1 s micro configs to multi-minute full-scale points).
POINT_WALL_BOUNDS = (
    0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

#: ``# HELP`` lines for the fleet metric families.
FLEET_HELP: Dict[str, str] = {
    "repro_fleet_jobs_total": "Terminal job outcomes by status",
    "repro_fleet_jobs_running": "Job attempts currently executing",
    "repro_fleet_jobs_queued": "Jobs waiting for a worker slot",
    "repro_fleet_jobs_planned": "Grid points in this sweep",
    "repro_fleet_busy_seconds_total":
        "Worker seconds spent simulating (sum over attempts)",
    "repro_fleet_elapsed_seconds": "Wall seconds since the run began",
    "repro_fleet_workers": "Resolved worker slot count",
    "repro_fleet_worker_utilization":
        "busy_seconds / (elapsed * workers), capped at 1",
    "repro_fleet_throughput_jobs_per_second":
        "Finished jobs per elapsed wall second",
    "repro_fleet_straggler_seconds":
        "Age of the oldest in-flight attempt (straggler watermark)",
    "repro_fleet_rss_bytes": "Orchestrator resident set size",
    "repro_fleet_cache_hits_total":
        "Jobs answered without simulating, by source",
    "repro_fleet_agent_up": "1 while the cluster agent link is alive",
    "repro_fleet_agent_inflight": "Jobs in flight on the agent",
    "repro_fleet_agent_served_total": "Outcomes the agent has shipped",
    "repro_fleet_agent_clock_offset_seconds":
        "Estimated agent monotonic-clock offset vs the coordinator",
    "repro_fleet_point_wall_seconds":
        "Wall-clock distribution of completed grid points",
}


def read_rss_bytes() -> Optional[int]:
    """Best-effort resident set size (Linux ``VmRSS``), else None."""
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    return None


def fleet_registry(snapshot: Dict[str, object]) -> MetricsRegistry:
    """Build the fleet metric instruments for one status snapshot.

    Rebuilt per scrape from the snapshot (cheap: tens of instruments),
    so the scheduling loop never touches a registry on its hot path.
    """
    registry = MetricsRegistry()
    counters = dict(snapshot.get("counters") or {})

    def number(value, default=0.0) -> float:
        try:
            return float(value)
        except (TypeError, ValueError):
            return default

    for status in ("done", "failed", "cached"):
        registry.counter(
            f'repro_fleet_jobs_total{{status="{status}"}}'
        ).inc(number(counters.get(status)))
    registry.gauge("repro_fleet_jobs_running").set(
        number(counters.get("running")))
    registry.gauge("repro_fleet_jobs_queued").set(
        number(counters.get("queued")))
    registry.gauge("repro_fleet_jobs_planned").set(
        number(counters.get("total")))
    registry.counter("repro_fleet_busy_seconds_total").inc(
        number(counters.get("busy_seconds")))
    registry.gauge("repro_fleet_elapsed_seconds").set(
        number(snapshot.get("elapsed_s")))
    registry.gauge("repro_fleet_workers").set(
        number(snapshot.get("workers")))
    registry.gauge("repro_fleet_worker_utilization").set(
        number(snapshot.get("utilization")))
    registry.gauge("repro_fleet_throughput_jobs_per_second").set(
        number(snapshot.get("throughput_jobs_s")))
    registry.gauge("repro_fleet_straggler_seconds").set(
        number(snapshot.get("straggler_s")))
    rss = snapshot.get("rss_bytes")
    if rss is not None:
        registry.gauge("repro_fleet_rss_bytes").set(number(rss))

    sources = dict(snapshot.get("cache_sources") or {})
    for source in sorted(sources):
        label = prometheus.escape_label_value(str(source))
        registry.counter(
            f'repro_fleet_cache_hits_total{{source="{label}"}}'
        ).inc(number(sources[source]))

    for agent in snapshot.get("agents") or ():
        label = prometheus.escape_label_value(str(agent.get("name", "?")))
        registry.gauge(f'repro_fleet_agent_up{{agent="{label}"}}').set(
            1.0 if agent.get("alive") else 0.0)
        registry.gauge(
            f'repro_fleet_agent_inflight{{agent="{label}"}}'
        ).set(number(agent.get("inflight")))
        registry.counter(
            f'repro_fleet_agent_served_total{{agent="{label}"}}'
        ).inc(number(agent.get("served")))
        offset = agent.get("clock_offset_s")
        if offset is not None:
            registry.gauge(
                f'repro_fleet_agent_clock_offset_seconds{{agent="{label}"}}'
            ).set(number(offset))

    walls = snapshot.get("point_wall_s") or ()
    if walls:
        histogram = registry.histogram(
            "repro_fleet_point_wall_seconds", bounds=POINT_WALL_BOUNDS
        )
        for wall in walls:
            histogram.observe(number(wall))
    return registry


class _StatusHandler(BaseHTTPRequestHandler):
    """GET-only handler over the owning :class:`StatusPlane`."""

    plane: "StatusPlane" = None  # bound by the dynamic subclass
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 (http.server contract)
        path = self.path.split("?", 1)[0]
        if path == "/status.json":
            body = json.dumps(self.plane.status_payload()).encode("utf-8")
            self._reply(200, "application/json; charset=utf-8", body)
        elif path == "/metrics":
            snapshot = self.plane.latest or {}
            text = prometheus.exposition(
                fleet_registry(snapshot), help_texts=FLEET_HELP
            )
            self._reply(200, prometheus.CONTENT_TYPE, text.encode("utf-8"))
        elif path == "/":
            body = (b"repro fleet status plane\n"
                    b"  /status.json  latest snapshot + history\n"
                    b"  /metrics      Prometheus text exposition\n")
            self._reply(200, "text/plain; charset=utf-8", body)
        else:
            self._reply(404, "text/plain; charset=utf-8", b"not found\n")

    def _reply(self, code: int, content_type: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:
        pass  # a scrape per second must not spam the progress line


class StatusPlane:
    """Sampler thread + HTTP server around a snapshot *provider*.

    *provider* is a zero-argument callable returning the current status
    snapshot dict; the plane stamps schema/state/history on top.  Both
    threads are daemons, but :meth:`stop` tears them down deterministically
    (final ``state="done"`` snapshot included) at the end of the run.
    """

    def __init__(
        self,
        provider: Callable[[], Dict[str, object]],
        host: str = "127.0.0.1",
        port: int = 0,
        interval_s: float = 0.5,
        history: int = DEFAULT_HISTORY,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self._provider = provider
        self._host = host
        self._port = port
        self._interval_s = interval_s
        self._lock = threading.Lock()
        self._history = deque(maxlen=history)
        self._latest: Optional[Dict[str, object]] = None
        self._stop = threading.Event()
        self._server: Optional[ThreadingHTTPServer] = None
        self._server_thread: Optional[threading.Thread] = None
        self._sampler_thread: Optional[threading.Thread] = None
        self.url: Optional[str] = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> str:
        """Bind, take the first sample, start both threads; returns URL."""
        handler = type("Handler", (_StatusHandler,), {"plane": self})
        self._server = ThreadingHTTPServer((self._host, self._port), handler)
        self._server.daemon_threads = True
        host, port = self._server.server_address[:2]
        self.url = f"http://{host}:{port}"
        self.sample(state="running")
        self._server_thread = threading.Thread(
            target=self._server.serve_forever, name="fleet-status-http",
            daemon=True,
        )
        self._server_thread.start()
        self._sampler_thread = threading.Thread(
            target=self._sample_loop, name="fleet-status-sampler",
            daemon=True,
        )
        self._sampler_thread.start()
        return self.url

    def stop(self) -> None:
        """Final snapshot, then shut the server and sampler down."""
        if self._stop.is_set():
            return
        self.sample(state="done")
        self._stop.set()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        if self._server_thread is not None:
            self._server_thread.join(timeout=5.0)
        if self._sampler_thread is not None:
            self._sampler_thread.join(timeout=5.0)

    # -- sampling -------------------------------------------------------

    def sample(self, state: str = "running") -> Dict[str, object]:
        """Take one snapshot now (the sampler calls this on its cadence)."""
        try:
            snapshot = dict(self._provider())
        except Exception as exc:  # the plane must never fail the run
            snapshot = {"error": f"{type(exc).__name__}: {exc}"}
        snapshot["schema"] = STATUS_SCHEMA_VERSION
        snapshot["state"] = state
        with self._lock:
            self._latest = snapshot
            counters = snapshot.get("counters") or {}
            self._history.append([
                round(float(snapshot.get("elapsed_s", 0.0)), 3),
                int(counters.get("finished", 0) or 0),
            ])
        return snapshot

    def _sample_loop(self) -> None:
        while not self._stop.wait(self._interval_s):
            self.sample(state="running")

    # -- accessors ------------------------------------------------------

    @property
    def latest(self) -> Optional[Dict[str, object]]:
        with self._lock:
            return dict(self._latest) if self._latest is not None else None

    def status_payload(self) -> Dict[str, object]:
        with self._lock:
            payload = dict(self._latest) if self._latest is not None else {
                "schema": STATUS_SCHEMA_VERSION, "state": "starting",
            }
            payload["history"] = [list(pair) for pair in self._history]
        return payload


__all__ = [
    "DEFAULT_HISTORY",
    "FLEET_HELP",
    "POINT_WALL_BOUNDS",
    "STATUS_SCHEMA_VERSION",
    "StatusPlane",
    "fleet_registry",
    "read_rss_bytes",
]
