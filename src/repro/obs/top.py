"""``repro top`` — a live terminal dashboard over the status plane.

Point it at a running sweep's status URL (``repro top
http://127.0.0.1:8377``) and it polls ``/status.json``, redrawing a
compact frame each interval until the run reports ``state: done``.
Point it at a run directory instead and it degrades gracefully: the run
is over (or never served a status port), so one frame is reconstructed
post-hoc from ``telemetry.jsonl`` and printed once.

Stdlib only (``urllib``), like the rest of the fleet plane.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time
import urllib.error
import urllib.request
from typing import Dict, Optional, TextIO


def fetch_status(url: str, timeout: float = 5.0) -> Dict[str, object]:
    """One ``/status.json`` snapshot from a live status plane."""
    target = url.rstrip("/")
    if not target.endswith("/status.json"):
        target += "/status.json"
    with urllib.request.urlopen(target, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def snapshot_from_telemetry(run_dir) -> Dict[str, object]:
    """Reconstruct a status snapshot from a finished run's telemetry.

    Mirrors the live ``/status.json`` schema closely enough that one
    renderer serves both; ``state`` records whether the telemetry ended
    in a summary (``done``/``aborted``) or mid-run (``stale``).
    """
    path = pathlib.Path(run_dir) / "telemetry.jsonl"
    if not path.exists():
        raise FileNotFoundError(
            f"no telemetry.jsonl under {run_dir} — pass a run directory "
            "or a live status URL"
        )
    counters = {"total": 0, "done": 0, "failed": 0, "cached": 0,
                "running": 0}
    walls = []
    last_t = 0.0
    summary = None
    sources: Dict[str, int] = {}
    for line in path.read_text(encoding="utf-8").splitlines():
        try:
            record = json.loads(line)
        except ValueError:
            continue
        event = record.get("event")
        if event == "begin":
            counters["total"] = int(record.get("total", 0))
        elif event == "job":
            status = record.get("status", "done")
            if status in counters:
                counters[status] += 1
            if status == "done":
                walls.append(float(record.get("wall_s", 0.0)))
            last_t = max(last_t, float(record.get("t", 0.0)))
        elif event == "attempt":
            last_t = max(last_t, float(record.get("t", 0.0)))
        elif event == "summary":
            summary = record
    finished = counters["done"] + counters["failed"] + counters["cached"]
    counters["finished"] = finished
    counters["queued"] = max(0, counters["total"] - finished)
    elapsed = float(summary.get("elapsed_s", last_t)) if summary else last_t
    snapshot: Dict[str, object] = {
        "schema": 1,
        "state": ("aborted" if summary and summary.get("aborted")
                  else "done" if summary else "stale"),
        "elapsed_s": elapsed,
        "counters": counters,
        "workers": summary.get("workers") if summary else None,
        "backend": summary.get("backend") if summary else None,
        "utilization": (summary.get("worker_utilization", 0.0)
                        if summary else 0.0),
        "throughput_jobs_s": (finished / elapsed if elapsed > 0 else 0.0),
        "cache_hit_rate": (summary.get("cache_hit_rate", 0.0)
                           if summary else 0.0),
        "straggler_s": 0.0,
        "cache_sources": sources,
        "agents": [],
        "point_wall_s": walls,
    }
    return snapshot


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------

def _bar(fraction: float, width: int = 32) -> str:
    fraction = max(0.0, min(1.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "-" * (width - filled)


def _fmt_bytes(value) -> str:
    try:
        size = float(value)
    except (TypeError, ValueError):
        return "-"
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024.0 or unit == "GiB":
            return f"{size:.0f} {unit}" if unit == "B" else f"{size:.1f} {unit}"
        size /= 1024.0
    return "-"


def render_status(snapshot: Dict[str, object]) -> str:
    """One dashboard frame (plain text, no cursor control)."""
    counters = dict(snapshot.get("counters") or {})
    total = int(counters.get("total", 0) or 0)
    finished = int(counters.get("finished", 0) or 0)
    running = int(counters.get("running", 0) or 0)
    queued = int(counters.get("queued", 0) or 0)
    elapsed = float(snapshot.get("elapsed_s", 0.0) or 0.0)
    throughput = float(snapshot.get("throughput_jobs_s", 0.0) or 0.0)
    fraction = finished / total if total else 0.0

    lines = []
    state = snapshot.get("state", "?")
    backend = snapshot.get("backend") or "?"
    workers = snapshot.get("workers")
    header = (f"repro fleet · {state} · backend {backend}"
              + (f" · {workers} workers" if workers else ""))
    lines.append(header)
    eta = ""
    remaining = total - finished
    if state == "running" and throughput > 0 and remaining > 0:
        eta = f"  eta ~{remaining / throughput:.0f}s"
    lines.append(
        f"[{_bar(fraction)}] {finished}/{total} "
        f"({100.0 * fraction:.0f}%)  elapsed {elapsed:.1f}s{eta}"
    )
    lines.append(
        f"done {counters.get('done', 0)} · cached "
        f"{counters.get('cached', 0)} · failed {counters.get('failed', 0)} "
        f"· running {running} · queued {queued}"
    )
    utilization = float(snapshot.get("utilization", 0.0) or 0.0)
    straggler = float(snapshot.get("straggler_s", 0.0) or 0.0)
    lines.append(
        f"throughput {throughput:.2f} jobs/s · utilization "
        f"{100.0 * utilization:.0f}% · straggler {straggler:.1f}s · rss "
        f"{_fmt_bytes(snapshot.get('rss_bytes'))}"
    )
    sources = dict(snapshot.get("cache_sources") or {})
    hit_rate = float(snapshot.get("cache_hit_rate", 0.0) or 0.0)
    if sources:
        detail = ", ".join(
            f"{name} {sources[name]}" for name in sorted(sources)
        )
        lines.append(f"cache hit-rate {100.0 * hit_rate:.0f}% ({detail})")
    else:
        lines.append(f"cache hit-rate {100.0 * hit_rate:.0f}%")
    agents = list(snapshot.get("agents") or ())
    if agents:
        lines.append("agents:")
        lines.append(f"  {'name':<24} {'state':<6} {'inflight':>8} "
                     f"{'served':>7} {'clock offset':>13}")
        for agent in agents:
            offset = agent.get("clock_offset_s")
            offset_text = (f"{offset * 1000.0:+.2f} ms"
                           if isinstance(offset, (int, float)) else "-")
            lines.append(
                f"  {str(agent.get('name', '?')):<24} "
                f"{'up' if agent.get('alive') else 'down':<6} "
                f"{agent.get('inflight', 0):>8} "
                f"{agent.get('served', 0):>7} {offset_text:>13}"
            )
    if snapshot.get("error"):
        lines.append(f"provider error: {snapshot['error']}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# The ``repro top`` loop
# ----------------------------------------------------------------------

def run_top(
    target: str,
    interval_s: float = 1.0,
    once: bool = False,
    stream: Optional[TextIO] = None,
    clock=time.monotonic,
    sleep=time.sleep,
) -> int:
    """Drive the dashboard against *target* (URL or run directory).

    Returns a process exit code: 0 on a clean finish, 1 when the target
    is unreachable/unusable.
    """
    out = stream if stream is not None else sys.stdout
    if not target.startswith(("http://", "https://")):
        try:
            snapshot = snapshot_from_telemetry(target)
        except (FileNotFoundError, OSError) as exc:
            print(f"repro top: {exc}", file=out)
            return 1
        print(render_status(snapshot), file=out)
        return 0

    failures = 0
    while True:
        try:
            snapshot = fetch_status(target)
            failures = 0
        except (urllib.error.URLError, OSError, ValueError) as exc:
            failures += 1
            if failures >= 3:
                print(
                    f"repro top: status plane at {target} unreachable "
                    f"({exc}) — the run has likely finished; point me at "
                    "its --run-dir for a post-hoc view", file=out,
                )
                return 1
            sleep(interval_s)
            continue
        frame = render_status(snapshot)
        if not once and out.isatty():
            out.write("\x1b[2J\x1b[H" + frame + "\n")
            out.flush()
        else:
            print(frame, file=out)
        if once or snapshot.get("state") in ("done", "aborted"):
            return 0
        sleep(interval_s)


__all__ = [
    "fetch_status",
    "render_status",
    "run_top",
    "snapshot_from_telemetry",
]
