"""Deterministic random number generation.

Simulation runs must be bit-reproducible across processes and Python
versions, so the project uses an explicit splitmix64 generator instead of
``random.Random`` internals.  splitmix64 is also the keystream primitive
used by the data scrambler (:mod:`repro.scramble`).
"""

from __future__ import annotations

MASK64 = (1 << 64) - 1

#: bound -> rejection-sampling threshold; the simulator draws from a
#: handful of distinct bounds millions of times.
_REJECTION_THRESHOLDS: dict = {}


def splitmix64(state: int) -> int:
    """One splitmix64 step: map a 64-bit state to a well-mixed 64-bit output.

    This is a pure function — callers advance the state themselves (usually
    by feeding in ``state + GOLDEN_GAMMA``).
    """
    z = (state + 0x9E3779B97F4A7C15) & MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & MASK64
    return (z ^ (z >> 31)) & MASK64


class DeterministicRng:
    """A small, fast, reproducible RNG built on splitmix64.

    Supports exactly the operations the simulator needs; it intentionally
    does not mirror the full ``random.Random`` API.
    """

    def __init__(self, seed: int) -> None:
        self._state = seed & MASK64

    def next_u64(self) -> int:
        """Return the next 64-bit unsigned value."""
        # splitmix64 inlined: this is the single hottest primitive in the
        # simulator (content generation calls it per 8 output bytes).
        state = (self._state + 0x9E3779B97F4A7C15) & MASK64
        self._state = state
        z = (state + 0x9E3779B97F4A7C15) & MASK64
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & MASK64
        return (z ^ (z >> 31)) & MASK64

    def next_below(self, bound: int) -> int:
        """Return a value uniform in ``[0, bound)``.

        Uses rejection sampling so small bounds are unbiased.
        """
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        threshold = _REJECTION_THRESHOLDS.get(bound)
        if threshold is None:
            threshold = (MASK64 + 1) - ((MASK64 + 1) % bound)
            if len(_REJECTION_THRESHOLDS) < 4096:
                _REJECTION_THRESHOLDS[bound] = threshold
        while True:
            value = self.next_u64()
            if value < threshold:
                return value % bound

    def next_float(self) -> float:
        """Return a float uniform in ``[0, 1)`` with 53 bits of precision."""
        return (self.next_u64() >> 11) / float(1 << 53)

    def next_bytes(self, count: int) -> bytes:
        """Return *count* pseudo-random bytes."""
        # Little-endian chunks concatenate into one little-endian integer,
        # so the whole buffer materialises in a single to_bytes call.
        chunks = (count + 7) // 8
        state = self._state
        out = 0
        shift = 0
        for _ in range(chunks):
            state = (state + 0x9E3779B97F4A7C15) & MASK64
            z = (state + 0x9E3779B97F4A7C15) & MASK64
            z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
            z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & MASK64
            out |= ((z ^ (z >> 31)) & MASK64) << shift
            shift += 64
        self._state = state
        return out.to_bytes(8 * chunks, "little")[:count]

    def choice(self, items):
        """Return a uniformly chosen element of a non-empty sequence."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[self.next_below(len(items))]

    def shuffle(self, items) -> None:
        """Fisher-Yates shuffle of a mutable sequence, in place."""
        for i in range(len(items) - 1, 0, -1):
            j = self.next_below(i + 1)
            items[i], items[j] = items[j], items[i]

    def fork(self, stream_id: int) -> "DeterministicRng":
        """Derive an independent child generator for a named sub-stream."""
        return DeterministicRng(splitmix64(self._state ^ (stream_id * 0xD6E8FEB86659FD93)))
