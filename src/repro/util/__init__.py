"""Shared low-level utilities: bit manipulation and deterministic RNG."""

from repro.util.bitops import (
    CACHELINE_BYTES,
    bytes_to_words,
    extract_bits,
    fits_signed,
    fits_unsigned,
    insert_bits,
    sign_extend,
    to_signed,
    to_unsigned,
    words_to_bytes,
)
from repro.util.rng import DeterministicRng, splitmix64

__all__ = [
    "CACHELINE_BYTES",
    "DeterministicRng",
    "bytes_to_words",
    "extract_bits",
    "fits_signed",
    "fits_unsigned",
    "insert_bits",
    "sign_extend",
    "splitmix64",
    "to_signed",
    "to_unsigned",
    "words_to_bytes",
]
