"""Bit- and byte-level helpers shared by the compression and BLEM codecs.

All cachelines in this project are 64-byte ``bytes`` objects.  The helpers
here convert between byte strings and fixed-width little-endian words, and
provide the signed/unsigned range checks that the BDI and FPC compressors
are built from.
"""

from __future__ import annotations

from typing import List

CACHELINE_BYTES = 64


def bytes_to_words(data: bytes, word_size: int) -> List[int]:
    """Split *data* into little-endian unsigned words of *word_size* bytes.

    Raises ``ValueError`` if the data length is not a multiple of the word
    size, because a partial trailing word would silently corrupt round
    trips.
    """
    if word_size <= 0:
        raise ValueError(f"word_size must be positive, got {word_size}")
    if len(data) % word_size != 0:
        raise ValueError(
            f"data length {len(data)} is not a multiple of word size {word_size}"
        )
    return [
        int.from_bytes(data[offset : offset + word_size], "little")
        for offset in range(0, len(data), word_size)
    ]


def words_to_bytes(words: List[int], word_size: int) -> bytes:
    """Inverse of :func:`bytes_to_words`."""
    if word_size <= 0:
        raise ValueError(f"word_size must be positive, got {word_size}")
    out = bytearray()
    limit = 1 << (8 * word_size)
    for word in words:
        if not 0 <= word < limit:
            raise ValueError(f"word {word:#x} does not fit in {word_size} bytes")
        out += word.to_bytes(word_size, "little")
    return bytes(out)


def to_signed(value: int, bits: int) -> int:
    """Reinterpret an unsigned *bits*-wide value as two's-complement."""
    sign_bit = 1 << (bits - 1)
    return (value & (sign_bit - 1)) - (value & sign_bit)


def to_unsigned(value: int, bits: int) -> int:
    """Reinterpret a two's-complement value as an unsigned *bits*-wide value."""
    return value & ((1 << bits) - 1)


def sign_extend(value: int, from_bits: int) -> int:
    """Sign-extend the low *from_bits* of *value* to a Python int."""
    return to_signed(value & ((1 << from_bits) - 1), from_bits)


def fits_signed(value: int, bits: int) -> bool:
    """True when the signed integer *value* fits in *bits* two's-complement bits."""
    lo = -(1 << (bits - 1))
    hi = (1 << (bits - 1)) - 1
    return lo <= value <= hi


def fits_unsigned(value: int, bits: int) -> bool:
    """True when the non-negative integer *value* fits in *bits* unsigned bits."""
    return 0 <= value < (1 << bits)


def extract_bits(data: bytes, bit_offset: int, bit_count: int) -> int:
    """Read *bit_count* bits starting at *bit_offset* (MSB-first bit order).

    Bit 0 is the most-significant bit of byte 0, matching the paper's "top
    15 bits of the cacheline" phrasing for the CID.
    """
    if bit_count < 0 or bit_offset < 0:
        raise ValueError("bit_offset and bit_count must be non-negative")
    if bit_offset + bit_count > 8 * len(data):
        raise ValueError(
            f"bit range [{bit_offset}, {bit_offset + bit_count}) exceeds "
            f"{8 * len(data)}-bit data"
        )
    value = 0
    for i in range(bit_count):
        absolute = bit_offset + i
        byte = data[absolute // 8]
        bit = (byte >> (7 - (absolute % 8))) & 1
        value = (value << 1) | bit
    return value


def insert_bits(data: bytes, bit_offset: int, bit_count: int, value: int) -> bytes:
    """Return a copy of *data* with *bit_count* bits at *bit_offset* replaced.

    Uses the same MSB-first bit order as :func:`extract_bits`.
    """
    if not fits_unsigned(value, bit_count):
        raise ValueError(f"value {value:#x} does not fit in {bit_count} bits")
    if bit_offset + bit_count > 8 * len(data):
        raise ValueError(
            f"bit range [{bit_offset}, {bit_offset + bit_count}) exceeds "
            f"{8 * len(data)}-bit data"
        )
    out = bytearray(data)
    for i in range(bit_count):
        absolute = bit_offset + i
        bit = (value >> (bit_count - 1 - i)) & 1
        mask = 1 << (7 - (absolute % 8))
        if bit:
            out[absolute // 8] |= mask
        else:
            out[absolute // 8] &= ~mask & 0xFF
    return bytes(out)
