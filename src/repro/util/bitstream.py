"""MSB-first bit stream writer/reader used by the FPC codec."""

from __future__ import annotations

from repro.util.bitops import fits_unsigned


class BitWriter:
    """Accumulates values MSB-first into a byte string."""

    def __init__(self) -> None:
        self._bits: int = 0
        self._bit_count: int = 0

    def write(self, value: int, bit_count: int) -> None:
        """Append the low *bit_count* bits of *value* (must fit unsigned)."""
        if not fits_unsigned(value, bit_count):
            raise ValueError(f"value {value:#x} does not fit in {bit_count} bits")
        self._bits = (self._bits << bit_count) | value
        self._bit_count += bit_count

    @property
    def bit_length(self) -> int:
        """Number of bits written so far."""
        return self._bit_count

    def to_bytes(self) -> bytes:
        """Return the stream padded with zero bits to a byte boundary."""
        pad = (-self._bit_count) % 8
        total = self._bit_count + pad
        if total == 0:
            return b""
        return (self._bits << pad).to_bytes(total // 8, "big")


class BitReader:
    """Reads values MSB-first from a byte string produced by BitWriter."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._position = 0

    @property
    def remaining_bits(self) -> int:
        """Bits not yet consumed (including any trailing padding)."""
        return 8 * len(self._data) - self._position

    def read(self, bit_count: int) -> int:
        """Consume and return the next *bit_count* bits as an unsigned int."""
        if bit_count < 0:
            raise ValueError("bit_count must be non-negative")
        if self._position + bit_count > 8 * len(self._data):
            raise ValueError("bit stream exhausted")
        value = 0
        for _ in range(bit_count):
            byte = self._data[self._position // 8]
            bit = (byte >> (7 - (self._position % 8))) & 1
            value = (value << 1) | bit
            self._position += 1
        return value
