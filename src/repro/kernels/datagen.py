"""Batch cacheline class evaluation and content synthesis.

Columnar mirror of :class:`repro.workloads.datagen.DataModel`: classes
and contents are pure functions of ``(seed, profile, line, version)``,
so a batch of (line, version) pairs maps to arrays through the same
splitmix64 hash fold the scalar model uses, drawn with
:func:`repro.kernels.rng.vec_splitmix64`.

Two exactness hazards are handled explicitly:

* bounded draws with bounds 17 and 200 can (with probability ~1e-17 per
  draw) reject in the scalar rejection loop, which would shift every
  subsequent draw for that line — any line whose raw draws cross the
  rejection threshold falls back to the scalar ``line_data`` wholesale;
* ``_pattern_fpc_sparse`` assigns ``words[rng.next_below(16)] =
  rng.next_below(1 << 15)`` — Python evaluates the right-hand side
  first, so the *value* draw precedes the *index* draw.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..util.bitops import CACHELINE_BYTES
from ..util.rng import MASK64
from .rng import GOLDEN_GAMMA, rejection_threshold, vec_splitmix64

__all__ = [
    "hash_fold",
    "line_classes",
    "lines_data",
    "measure_compressibility",
]

_GAMMA = np.uint64(GOLDEN_GAMMA)
_INV_2_53 = 1.0 / 9007199254740992.0
_CHUNK_ELEMENTS = 1 << 23

#: Cumulative upper bounds of DataModel._PATTERN_WEIGHTS in order
#: (zeros 1, repeat8 2, base8 4, base4 4, fpc_small 3, fpc_sparse 3).
_PATTERN_BOUNDS = np.array([1, 3, 7, 11, 14, 17], dtype=np.uint64)


def hash_fold(seed: int, parts) -> np.ndarray:
    """Vector mirror of ``DataModel._hash``: fold *parts* into a state.

    *parts* is a sequence of uint64 arrays (or scalars); arrays
    broadcast together.
    """
    state = np.uint64(seed & MASK64)
    with np.errstate(over="ignore"):
        for part in parts:
            part = np.asarray(part, dtype=np.uint64)
            z = (state ^ (part * _GAMMA)) + _GAMMA
            z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
            z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
            state = z ^ (z >> np.uint64(31))
    return np.asarray(state, dtype=np.uint64)


def _unit(seed: int, parts) -> np.ndarray:
    return (hash_fold(seed, parts) >> np.uint64(11)).astype(np.float64) * _INV_2_53


def line_classes(model, lines: np.ndarray, versions: np.ndarray) -> np.ndarray:
    """Vector mirror of ``DataModel.line_class`` over (line, version) pairs."""
    profile = model._profile
    seed = model._seed
    lines = np.ascontiguousarray(lines, dtype=np.uint64)
    pages = lines >> np.uint64(6)  # LINES_PER_PAGE == 64
    pure = _unit(seed, (pages, 0xBA5E)) < profile.page_uniformity
    fraction = profile.compressible_fraction
    base = np.where(
        pure,
        _unit(seed, (pages, 0xC1A5)) < fraction,
        _unit(seed, (lines, 0x11FE)) < fraction,
    )
    versions = np.ascontiguousarray(versions, dtype=np.int64)
    flips_odd = np.zeros(lines.shape[0], dtype=bool)
    if versions.any():
        churn = profile.store_churn
        # Probe each *unique* line once up to its maximum queried
        # version; a per-line prefix parity then answers every (line,
        # version) query — the same probes as the scalar loop, without
        # re-walking 1..v per duplicate line.  Chunked so pathological
        # version totals stay bounded per sweep.
        unique, inverse = np.unique(lines, return_inverse=True)
        max_version = np.zeros(unique.shape[0], dtype=np.int64)
        np.maximum.at(max_version, inverse, versions)
        ends = np.cumsum(max_version)
        starts = ends - max_version
        parity = np.zeros(int(ends[-1]), dtype=np.int8)
        begin = 0
        while begin < unique.shape[0]:
            end = begin
            while (
                end < unique.shape[0]
                and ends[end] - starts[begin] <= _CHUNK_ELEMENTS
            ):
                end += 1
            end = max(end, begin + 1)
            counts = max_version[begin:end]
            total = int(counts.sum())
            if total:
                owner = np.repeat(np.arange(begin, end), counts)
                offsets = np.cumsum(counts) - counts
                probe_version = (
                    np.arange(total) - np.repeat(offsets, counts) + 1
                ).astype(np.uint64)
                flipped = (
                    _unit(seed, (unique[owner], probe_version, 0xF11B)) < churn
                )
                running = np.cumsum(flipped)
                # Zero-count segments contribute nothing to the repeat;
                # clip their (past-the-end) offsets before indexing.
                first = np.minimum(offsets, total - 1)
                segment_base = np.repeat(
                    running[first] - flipped[first], counts
                )
                parity[starts[begin] : starts[begin] + total] = (
                    (running - segment_base) % 2
                ).astype(np.int8)
            begin = end
        queried = versions > 0
        lookup = starts[inverse] + versions - 1
        flips_odd[queried] = parity[lookup[queried]] == 1
    return base ^ flips_odd


def _draw_matrix(seeds: np.ndarray, first: int, count: int) -> np.ndarray:
    """Draws *first*..*first+count-1* (1-based) of each seed's stream."""
    with np.errstate(over="ignore"):
        states = seeds[:, None] + _GAMMA * np.arange(
            first, first + count, dtype=np.uint64
        )
        return vec_splitmix64(states)


def _generate_candidates(
    model, lines: np.ndarray, versions: np.ndarray, salt: int, targets: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """One salt wave of ``DataModel._generate`` over all rows.

    Returns ``(matrix, fallback)`` — the candidate (N, 64) uint8 matrix
    and a row mask where a rejected bounded draw requires the scalar
    path (matrix rows under the mask are unspecified).
    """
    count = lines.shape[0]
    seeds = hash_fold(model._seed, (lines, versions, np.uint64(salt), 0xDA7A))
    matrix = np.zeros((count, CACHELINE_BYTES), dtype=np.uint8)
    fallback = np.zeros(count, dtype=bool)

    incompressible = np.nonzero(~targets)[0]
    if incompressible.size:
        words = _draw_matrix(seeds[incompressible], 1, 8)
        matrix[incompressible] = (
            np.ascontiguousarray(words, dtype="<u8")
            .view(np.uint8)
            .reshape(-1, CACHELINE_BYTES)
        )

    compressible = np.nonzero(targets)[0]
    if not compressible.size:
        return matrix, fallback
    pick_raw = _draw_matrix(seeds[compressible], 1, 1)[:, 0]
    threshold17 = np.uint64(rejection_threshold(17))
    threshold200 = np.uint64(rejection_threshold(200))
    fallback[compressible[pick_raw >= threshold17]] = True
    pattern = np.searchsorted(_PATTERN_BOUNDS, pick_raw % np.uint64(17), side="right")

    def rows_of(pattern_id: int) -> np.ndarray:
        return compressible[pattern == pattern_id]

    # zeros (pattern 0): matrix rows already zero.
    rows = rows_of(1)  # repeat8
    if rows.size:
        chunk = np.ascontiguousarray(_draw_matrix(seeds[rows], 2, 1), dtype="<u8")
        matrix[rows] = np.tile(chunk.view(np.uint8).reshape(-1, 8), (1, 8))
    rows = rows_of(2)  # base8_delta1
    if rows.size:
        draws = _draw_matrix(seeds[rows], 2, 9)
        base = draws[:, :1]
        deltas = draws[:, 1:]
        fallback[rows[(deltas >= threshold200).any(axis=1)]] = True
        with np.errstate(over="ignore"):
            words = base + deltas % np.uint64(200) - np.uint64(100)
        matrix[rows] = (
            np.ascontiguousarray(words, dtype="<u8")
            .view(np.uint8)
            .reshape(-1, CACHELINE_BYTES)
        )
    rows = rows_of(3)  # base4_delta1
    if rows.size:
        draws = _draw_matrix(seeds[rows], 2, 17)
        base = (draws[:, :1] & np.uint64(0xFFFFFFFF)).astype(np.int64)
        deltas = draws[:, 1:]
        fallback[rows[(deltas >= threshold200).any(axis=1)]] = True
        words = (base + (deltas % np.uint64(200)).astype(np.int64) - 100) & 0xFFFFFFFF
        matrix[rows] = (
            words.astype("<u4").view(np.uint8).reshape(-1, CACHELINE_BYTES)
        )
    rows = rows_of(4)  # fpc_small_words
    if rows.size:
        draws = _draw_matrix(seeds[rows], 2, 16)
        words = ((draws % np.uint64(256)).astype(np.int64) - 128) & 0xFFFFFFFF
        matrix[rows] = (
            words.astype("<u4").view(np.uint8).reshape(-1, CACHELINE_BYTES)
        )
    rows = rows_of(5)  # fpc_sparse
    if rows.size:
        draws = _draw_matrix(seeds[rows], 2, 9)
        writes = (draws[:, 0] % np.uint64(4)).astype(np.int64) + 1
        words = np.zeros((rows.size, 16), dtype=np.int64)
        for k in range(4):
            active = np.nonzero(writes > k)[0]
            if not active.size:
                break
            # RHS before subscript: the value draw precedes the index draw.
            values = (draws[active, 1 + 2 * k] % np.uint64(1 << 15)).astype(np.int64)
            indices = (draws[active, 2 + 2 * k] % np.uint64(16)).astype(np.int64)
            words[active, indices] = values
        matrix[rows] = (
            words.astype("<u4").view(np.uint8).reshape(-1, CACHELINE_BYTES)
        )
    return matrix, fallback


def lines_data(model, lines: np.ndarray, versions: np.ndarray) -> np.ndarray:
    """Vector mirror of ``DataModel.line_data``: verified (N, 64) contents.

    Walks the same 16-salt retry loop in waves: every row's candidate is
    verified against the model's engine, mismatches advance to the next
    salt, and the exhaustion error matches the scalar message for the
    first failing row in input order.
    """
    lines = np.ascontiguousarray(lines, dtype=np.uint64)
    versions = np.ascontiguousarray(versions, dtype=np.uint64)
    targets = line_classes(model, lines, versions)
    out = np.zeros((lines.shape[0], CACHELINE_BYTES), dtype=np.uint8)
    pending = np.arange(lines.shape[0])
    for salt in range(16):
        if not pending.size:
            return out
        matrix, fallback = _generate_candidates(
            model, lines[pending], versions[pending], salt, targets[pending]
        )
        if fallback.any():  # pragma: no cover - ~1e-17 per draw
            for row in np.nonzero(fallback)[0]:
                index = pending[row]
                matrix[row] = np.frombuffer(
                    model.line_data(int(lines[index]), int(versions[index])),
                    dtype=np.uint8,
                )
        verified = model._engine.is_compressible_many(matrix) == targets[pending]
        verified |= fallback  # scalar line_data is already verified
        out[pending[verified]] = matrix[verified]
        pending = pending[~verified]
    if pending.size:
        line = int(lines[pending[0]])
        version = int(versions[pending[0]])
        compressible = bool(targets[pending[0]])
        raise RuntimeError(
            f"could not generate {'' if compressible else 'in'}compressible "
            f"content for line {line:#x} v{version}"
        )
    return out


def measure_compressibility(
    model, line_addresses, at_version: int = 0
) -> Tuple[int, int]:
    """Vector mirror of ``DataModel.measure_compressibility``.

    Generation verifies each line's content against its target class, so
    the measured count equals the count of True classes; generating (and
    discarding) the contents preserves the scalar path's exhaustion
    error exactly.
    """
    lines = np.fromiter(
        (line for line in line_addresses), dtype=np.uint64
    )
    versions = np.full(lines.shape[0], at_version, dtype=np.uint64)
    lines_data(model, lines, versions)
    classes = line_classes(model, lines, versions)
    return int(classes.sum()), int(lines.shape[0])
