"""The vector data plane: columnar numpy kernels, bit-identical to scalar.

Where :mod:`repro.fastpath` removed Python cycles from the cycle-level
simulator without changing its per-request structure, this package
replaces whole per-record loops with columnar numpy kernels:

* bulk address-stream generation for every access pattern
  (:mod:`repro.kernels.tracegen`), feeding both
  :func:`repro.workloads.tracegen.generate_workload` and the workload
  bank's blob materialisation;
* batch 64-byte line synthesis and class evaluation
  (:mod:`repro.kernels.datagen`);
* vectorised size-only BDI/FPC classifiers over N x 64 byte matrices
  (:mod:`repro.kernels.classify`), consumed by
  :meth:`repro.compression.engine.CompressionEngine.is_compressible_many`;
* bulk scrambler keystream generation (:mod:`repro.kernels.scramble`);
* a batched :func:`repro.sim.functional.run_functional` pipeline
  (:mod:`repro.kernels.functional`) built on a chunked-rounds
  set-associative LRU kernel (:mod:`repro.kernels.lru`);
* the vector *timing* plane for the detailed simulator: batched
  functional warm-up and memo prewarm (:mod:`repro.kernels.timing`),
  batch COPR training (:mod:`repro.kernels.copr`), batched LLC probes
  (:meth:`repro.cpu.cache.LastLevelCache.access_many`), and the
  struct-of-arrays FR-FCFS candidate plane inside
  :class:`repro.dram.channel.Channel` (arms only on organizations
  large enough to amortise it).

Every kernel is required to be **bit-identical** to the scalar path it
replaces: ``tests/test_kernels.py`` runs hypothesis differentials per
kernel and golden digest equality for whole runs with the vector path on
and off.

Control mirrors the fastpath gate:

* environment: ``REPRO_VECTOR=0`` (or ``false``/``off``) disables the
  vector path process-wide before import;
* code: :func:`set_enabled`, or :func:`overridden` for scoped toggling
  (used by the differential tests and ``repro profile --vector off``).

The gate also degrades gracefully: :func:`available` checks that numpy
imports, and :func:`enabled` is False without it, so every caller keeps
its scalar fallback.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "available",
    "enabled",
    "overridden",
    "set_enabled",
]


def _env_default() -> bool:
    raw = os.environ.get("REPRO_VECTOR", "1").strip().lower()
    return raw not in ("0", "false", "off", "no")


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except Exception:  # pragma: no cover - exercised only without numpy
        return False
    return True


_enabled: bool = _env_default()
_available: bool = _numpy_available()


def available() -> bool:
    """Whether the vector kernels can run at all (numpy imports)."""
    return _available


def enabled() -> bool:
    """Whether new components should take the vector path (default True)."""
    return _enabled and _available


def set_enabled(value: bool) -> None:
    """Globally enable/disable the vector path for components built later.

    Components consult the flag at batch boundaries, so flipping it
    mid-simulation never mixes the two modes within one batch.
    """
    global _enabled
    _enabled = bool(value)


@contextmanager
def overridden(value: bool) -> Iterator[None]:
    """Scoped :func:`set_enabled` (restores the previous value on exit)."""
    previous = _enabled
    set_enabled(value)
    try:
        yield
    finally:
        set_enabled(previous)
