"""Array-backed COPR training: batched GI/PaPR/LiPR counter updates.

Columnar mirror of :meth:`repro.core.copr.CoprPredictor.update` for the
no-prediction (warm-up) form ``update(address, compressible)`` over a
whole event stream.  Three sub-kernels, each bit-identical to the scalar
component it replaces:

* **GI** — per-region prefix scans: the 2-bit counter after event *i* is
  ``min(3, i - j)`` where *j* is the last incompressible event (a reset)
  at or before *i*, so both the pre-update seed value and the final
  counter fall out of one ``maximum.accumulate`` per region.
* **PaPR / LiPR** — chunked rounds over packed (sets, ways) matrices,
  the :mod:`repro.kernels.lru` trick extended to carry per-way payloads
  (2-bit counters / 64-bit line vectors) through the move-to-front
  shifts.  Events are partitioned by ``page % min(sets)``: when the
  larger set count is a multiple of the smaller (true for the repo's
  power-of-two tables), events of one round map to distinct sets in
  *both* tables and set-local order is preserved, so each round is one
  gather / match / shift / scatter pass.

The kernel loads the predictor's current dict state into matrices and
materialises the end state back (LRU way first, so insertion order
equals LRU order), leaving the tables exactly as the scalar event loop
would.  Unsupported configurations (ablated components, non-divisible
set counts, degenerate round counts) return ``False`` with the
predictor untouched; callers keep their scalar loop.
"""

from __future__ import annotations

import numpy as np

from ..workloads.datagen import LINES_PER_PAGE

__all__ = ["copr_train_batch"]

_FULL_VECTOR = np.uint64((1 << LINES_PER_PAGE) - 1)


def _load_table(table, value_dtype):
    """Dict-LRU sets -> (tags, values) matrices, column 0 = MRU."""
    sets, ways = table._sets, table._ways
    tags = np.full((sets, ways), -1, dtype=np.int64)
    values = np.zeros((sets, ways), dtype=value_dtype)
    for set_index, cache_set in enumerate(table._data):
        if not cache_set:
            continue
        # Dict insertion order is LRU -> MRU; column order is MRU-first.
        for way, (tag, value) in enumerate(reversed(list(cache_set.items()))):
            tags[set_index, way] = tag
            values[set_index, way] = value
    return tags, values


def _store_table(table, tags, values) -> None:
    """Matrices back into dict-LRU sets (LRU way inserted first)."""
    ways = table._ways
    for set_index, cache_set in enumerate(table._data):
        cache_set.clear()
        row_tags = tags[set_index]
        row_values = values[set_index]
        for way in range(ways - 1, -1, -1):
            tag = int(row_tags[way])
            if tag >= 0:
                cache_set[tag] = int(row_values[way])


def _gi_train(gi, addresses: np.ndarray, comp: np.ndarray) -> np.ndarray:
    """Batched GlobalIndicator update; returns the pre-update seeds.

    Mutates ``gi._counters`` to the post-stream state and returns, per
    event, whether the region counter *before* that event exceeded the
    threshold (the PaPR allocation seed).
    """
    total = addresses.shape[0]
    region = np.minimum(addresses // gi._region_bytes, gi._regions - 1)
    seeds = np.empty(total, dtype=bool)
    threshold = gi._threshold
    counters = gi._counters
    for region_index in range(gi._regions):
        member = np.nonzero(region == region_index)[0]
        if not member.size:
            continue
        observed = comp[member]
        pos = np.arange(member.size)
        # Inclusive index of the last reset (incompressible event) at or
        # before each position; -1 while the prefix is all-compressible.
        last_reset = np.maximum.accumulate(np.where(~observed, pos, -1))
        prior_reset = np.empty(member.size, dtype=np.int64)
        prior_reset[0] = -1
        prior_reset[1:] = last_reset[:-1]
        initial = counters[region_index]
        before = np.where(
            prior_reset >= 0,
            np.minimum(3, pos - prior_reset - 1),
            np.minimum(3, initial + pos),
        )
        seeds[member] = before > threshold
        if not observed[-1]:
            counters[region_index] = 0
        elif last_reset[-1] >= 0:
            counters[region_index] = int(min(3, member.size - 1 - last_reset[-1]))
        else:
            counters[region_index] = int(min(3, initial + member.size))
    return seeds


def copr_train_batch(copr, addresses, compressible) -> bool:
    """Train *copr* with ``update(address, outcome)`` per event, batched.

    Mirrors the scalar no-prediction update (warm-up training: no
    accuracy stats) over the whole stream.  Returns ``False`` — with the
    predictor untouched — when the configuration is unsupported; the
    caller falls back to the scalar loop.
    """
    gi, papr, lipr = copr._gi, copr._papr, copr._lipr
    if gi is None or papr is None or lipr is None:
        return False
    papr_table = papr._table
    lipr_table = lipr._table
    small = min(papr_table._sets, lipr_table._sets)
    large = max(papr_table._sets, lipr_table._sets)
    if small <= 0 or large % small != 0:
        return False

    addresses = np.ascontiguousarray(addresses, dtype=np.int64)
    comp = np.ascontiguousarray(compressible, dtype=bool)
    total = addresses.shape[0]
    if total == 0:
        return True
    lines = addresses // 64
    pages = lines // LINES_PER_PAGE
    line_in_page = (lines % LINES_PER_PAGE).astype(np.uint64)

    # Round assignment: rank of each event within its page % small
    # partition.  Distinct partitions map to distinct sets in both
    # tables (small divides both set counts) and ranks preserve each
    # partition's event order, so a round's lanes are independent.
    partition = pages % small
    order = np.argsort(partition, kind="stable")
    sorted_partition = partition[order]
    new_segment = np.empty(total, dtype=bool)
    new_segment[0] = True
    new_segment[1:] = sorted_partition[1:] != sorted_partition[:-1]
    segment_start = np.maximum.accumulate(
        np.where(new_segment, np.arange(total), 0)
    )
    rank = np.arange(total) - segment_start
    rank_order = np.argsort(rank, kind="stable")
    sorted_rank = rank[rank_order]
    rounds = int(sorted_rank[-1]) + 1
    if rounds > max(64, 16 * (total // small + 1)):
        # One partition dominates the stream: the round loop would
        # degenerate toward per-event cost.  Keep the scalar path.
        return False
    bounds = np.searchsorted(sorted_rank, np.arange(rounds + 1))
    lanes_by_round = order[rank_order]

    seeds = _gi_train(gi, addresses, comp)

    papr_tags, papr_values = _load_table(papr_table, np.int64)
    lipr_tags, lipr_values = _load_table(lipr_table, np.uint64)
    papr_sets, papr_ways = papr_table._sets, papr_table._ways
    lipr_sets, lipr_ways = lipr_table._sets, lipr_table._ways
    papr_shift = np.arange(1, papr_ways)[None, :]
    lipr_shift = np.arange(1, lipr_ways)[None, :]
    one = np.uint64(1)
    zero = np.uint64(0)
    for round_index in range(rounds):
        lanes = lanes_by_round[bounds[round_index]: bounds[round_index + 1]]
        page = pages[lanes]
        observed = comp[lanes]
        lane_index = np.arange(lanes.shape[0])

        # -- PaPR: 2-bit counters through the move-to-front machinery.
        rows = page % papr_sets
        tags = papr_tags[rows]
        values = papr_values[rows]
        match = tags == page[:, None]
        hit = match.any(axis=1)
        hit_col = np.argmax(match, axis=1)
        counter = np.where(
            hit,
            values[lane_index, hit_col],
            np.where(seeds[lanes], 3, 0),
        )
        # Neighbour propagation only on hits whose saturated conviction
        # agrees with the observation (pre-update counter).
        uniform = hit & (
            ((counter == 3) & observed) | ((counter == 0) & ~observed)
        )
        post = np.where(
            observed, np.minimum(3, counter + 1), np.maximum(0, counter - 1)
        )
        occupancy = (tags != -1).sum(axis=1)
        full = occupancy >= papr_ways
        slot = np.where(hit, hit_col, np.where(full, papr_ways - 1, occupancy))
        keep = papr_shift > slot[:, None]
        tags[:, 1:] = np.where(keep, tags[:, 1:], tags[:, :-1])
        values[:, 1:] = np.where(keep, values[:, 1:], values[:, :-1])
        tags[:, 0] = page
        values[:, 0] = post
        papr_tags[rows] = tags
        papr_values[rows] = values

        # -- LiPR: 64-bit vectors; allocation seeds from PaPR's
        # post-update counter, exactly like ``_update_fast``.
        rows = page % lipr_sets
        tags = lipr_tags[rows]
        vectors = lipr_values[rows]
        match = tags == page[:, None]
        hit = match.any(axis=1)
        hit_col = np.argmax(match, axis=1)
        vector = np.where(
            hit,
            vectors[lane_index, hit_col],
            np.where(post >= 2, _FULL_VECTOR, zero),
        )
        bit = one << line_in_page[lanes]
        vector = np.where(
            uniform,
            np.where(observed, _FULL_VECTOR, zero),
            np.where(observed, vector | bit, vector & ~bit),
        )
        occupancy = (tags != -1).sum(axis=1)
        full = occupancy >= lipr_ways
        slot = np.where(hit, hit_col, np.where(full, lipr_ways - 1, occupancy))
        keep = lipr_shift > slot[:, None]
        tags[:, 1:] = np.where(keep, tags[:, 1:], tags[:, :-1])
        vectors[:, 1:] = np.where(keep, vectors[:, 1:], vectors[:, :-1])
        tags[:, 0] = page
        vectors[:, 0] = vector
        lipr_tags[rows] = tags
        lipr_values[rows] = vectors

    _store_table(papr_table, papr_tags, papr_values)
    _store_table(lipr_table, lipr_tags, lipr_values)
    return True
