"""Chunked-rounds set-associative true-LRU cache simulation.

One kernel serves both scalar models that use insertion-ordered dicts as
LRU stacks: :class:`repro.cpu.cache.LastLevelCache` and the ``lru``
policy of :class:`repro.core.metadata_cache.MetadataCache`.

The trace is grouped by set (stable, preserving program order within
each set) and maximal runs of consecutive same-key accesses within a set
collapse into *nodes*: only a run's first access can miss or evict — the
rest are MRU refreshes — so each node carries the run's access count and
the OR of its write flags.  Nodes are then processed in *rounds* (the
k-th node of every set together): within a round all lanes touch
distinct sets, so each round is one gather / match / shift / scatter
pass over a (lanes, ways) tag matrix with column 0 as MRU.

The result reports per-node outcomes in first-access order plus the
aggregate counters and the final (sets, ways) tag/dirty matrices, so a
caller that started from an empty dict-backed cache can materialise the
identical end state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LruOutcome", "lru_simulate"]


@dataclass
class LruOutcome:
    """Per-node results of one LRU simulation, in first-access order.

    Attributes:
        pos: global index of each node's first access.
        key: the accessed key.
        count: accesses collapsed into the node (>= 1).
        write_any: OR of the node's write flags.
        hit: whether the node's first access hit.
        evict_key: victim key for evicting misses, else -1.
        evict_dirty: whether that victim was dirty.
        accesses: total accesses simulated.
        set_tags: final (sets, ways) resident keys, column 0 = MRU,
            -1 = empty way.
        set_dirty: final per-way dirty bits, aligned with ``set_tags``.
    """

    pos: np.ndarray
    key: np.ndarray
    count: np.ndarray
    write_any: np.ndarray
    hit: np.ndarray
    evict_key: np.ndarray
    evict_dirty: np.ndarray
    accesses: int
    set_tags: np.ndarray
    set_dirty: np.ndarray

    @property
    def hits(self) -> int:
        """Per-access hits (run refreshes always hit)."""
        return int(self.accesses - len(self.key) + self.hit.sum())

    @property
    def misses(self) -> int:
        return int((~self.hit).sum())

    @property
    def evictions(self) -> int:
        return int((self.evict_key >= 0).sum())

    @property
    def dirty_evictions(self) -> int:
        return int(self.evict_dirty.sum())


def lru_simulate(
    keys: np.ndarray, is_write: np.ndarray, sets: int, ways: int
) -> LruOutcome:
    """Simulate a true-LRU set-associative cache over an access stream.

    *keys* index the cache (set = key % sets); *is_write* marks accesses
    that dirty their entry.  Caches start empty.
    """
    keys = np.ascontiguousarray(keys, dtype=np.int64)
    is_write = np.ascontiguousarray(is_write, dtype=bool)
    total = keys.shape[0]
    empty = np.empty(0, dtype=np.int64)
    if not total:
        return LruOutcome(
            pos=empty, key=empty, count=empty,
            write_any=np.empty(0, dtype=bool), hit=np.empty(0, dtype=bool),
            evict_key=empty, evict_dirty=np.empty(0, dtype=bool), accesses=0,
            set_tags=np.full((sets, ways), -1, dtype=np.int64),
            set_dirty=np.zeros((sets, ways), dtype=bool),
        )
    set_ids = keys % sets
    order = np.argsort(set_ids, kind="stable")
    sorted_keys = keys[order]
    sorted_sets = set_ids[order]
    sorted_writes = is_write[order]

    new_set = np.empty(total, dtype=bool)
    new_set[0] = True
    new_set[1:] = sorted_sets[1:] != sorted_sets[:-1]
    new_run = new_set.copy()
    new_run[1:] |= sorted_keys[1:] != sorted_keys[:-1]
    run_start = np.nonzero(new_run)[0]
    node_count = np.diff(np.append(run_start, total))
    node_key = sorted_keys[run_start]
    node_set = sorted_sets[run_start]
    node_write = np.logical_or.reduceat(sorted_writes, run_start)
    node_pos = order[run_start]
    nodes = run_start.shape[0]

    # Rank of each node within its set = its round number.
    set_change = new_set[run_start]
    set_start = np.maximum.accumulate(
        np.where(set_change, np.arange(nodes), 0)
    )
    rank = np.arange(nodes) - set_start
    rank_order = np.argsort(rank, kind="stable")
    sorted_rank = rank[rank_order]
    rounds = int(sorted_rank[-1]) + 1
    bounds = np.searchsorted(sorted_rank, np.arange(rounds + 1))

    # Per-way state packs (key << 1) | dirty, -1 marking an empty way:
    # one matrix halves the per-round gather/scatter traffic, and the
    # move-to-front becomes a single masked shift instead of a
    # take_along_axis gather.
    state = np.full((sets, ways), -1, dtype=np.int64)
    hit = np.empty(nodes, dtype=bool)
    evict_key = np.full(nodes, -1, dtype=np.int64)
    evict_dirty = np.zeros(nodes, dtype=bool)
    shift_columns = np.arange(1, ways)[None, :]
    for round_id in range(rounds):
        lanes = rank_order[bounds[round_id] : bounds[round_id + 1]]
        rows = node_set[lanes]
        lane_state = state[rows]
        lane_keys = node_key[lanes]
        lane_write = node_write[lanes]
        match = (lane_state >> 1) == lane_keys[:, None]
        lane_hit = match.any(axis=1)
        hit_col = np.argmax(match, axis=1)
        occupancy = (lane_state != -1).sum(axis=1)
        full = occupancy >= ways
        evicting = ~lane_hit & full
        victims = lane_state[evicting, ways - 1]
        evict_key[lanes[evicting]] = victims >> 1
        evict_dirty[lanes[evicting]] = (victims & 1) == 1
        # Move-to-front: new column 0 holds the key; entries before the
        # vacated slot (hit position, LRU way, or first free way) shift
        # down one; later entries stay.
        slot = np.where(lane_hit, hit_col, np.where(full, ways - 1, occupancy))
        front_dirty = np.where(
            lane_hit,
            (lane_state[np.arange(lanes.shape[0]), slot] & 1) | lane_write,
            lane_write,
        )
        lane_state[:, 1:] = np.where(
            shift_columns <= slot[:, None],
            lane_state[:, :-1],
            lane_state[:, 1:],
        )
        lane_state[:, 0] = (lane_keys << 1) | front_dirty
        state[rows] = lane_state
        hit[lanes] = lane_hit

    occupied = state != -1
    tags = np.where(occupied, state >> 1, np.int64(-1))
    dirty = occupied & ((state & 1) == 1)
    emit = np.argsort(node_pos, kind="stable")
    return LruOutcome(
        pos=node_pos[emit],
        key=node_key[emit],
        count=node_count[emit],
        write_any=node_write[emit],
        hit=hit[emit],
        evict_key=evict_key[emit],
        evict_dirty=evict_dirty[emit],
        accesses=total,
        set_tags=tags,
        set_dirty=dirty,
    )
