"""Bulk address-stream and trace-column generation.

Columnar mirror of :class:`repro.workloads.tracegen.TraceGenerator` and
the :mod:`repro.workloads.access` patterns.  Each vector pattern exposes
``take(n)`` returning the next *n* byte addresses as a uint64 array,
consuming exactly the RNG draws the scalar generator would — the draws
for a landing/visit/phase happen when its *first* address is requested,
and a ``take`` boundary falling inside a burst buffers the remainder
without drawing ahead (over-drawing would corrupt mixed patterns, whose
sub-streams persist across phases).

The landing loops stay scalar Python (they are inherently sequential
and consume 1–3 draws per multi-address landing), while burst expansion,
modular address arithmetic, stream sweeps, and the op/gap trace columns
are vectorised.  Gap values divide ``log(u)`` by ``log(p)`` in float:
``np.log`` and ``math.log`` may disagree in the last ulp, so quotients
within a guard band of an integer are recomputed with the scalar
formula before truncation.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from ..util.bitops import CACHELINE_BYTES
from ..util.rng import DeterministicRng, splitmix64
from ..workloads.profiles import BenchmarkProfile
from .rng import VecRng

__all__ = [
    "core_columns",
    "make_vector_pattern",
    "workload_columns",
]


def _expand_landings(
    base: int,
    region_lines: int,
    starts: List[int],
    counts: List[int],
) -> np.ndarray:
    """Expand (start line, count) landings into wrapped byte addresses."""
    start_arr = np.array(starts, dtype=np.int64)
    count_arr = np.array(counts, dtype=np.int64)
    total = int(count_arr.sum())
    line = np.repeat(start_arr, count_arr) + (
        np.arange(total, dtype=np.int64)
        - np.repeat(np.cumsum(count_arr) - count_arr, count_arr)
    )
    return (base + (line % region_lines) * CACHELINE_BYTES).astype(np.uint64)


class _VecStream:
    """Vector mirror of ``StreamPattern.addresses``."""

    def __init__(self, base: int, region_bytes: int, seed: int, stride: int) -> None:
        self._base = base
        self._lines = region_bytes // CACHELINE_BYTES
        self._stride = stride
        self._rng = DeterministicRng(seed)
        self._index: Optional[int] = None

    def take(self, n: int) -> np.ndarray:
        if self._index is None:
            self._index = self._rng.next_below(self._lines)
        line = self._index + self._stride * np.arange(n, dtype=np.int64)
        self._index = (self._index + self._stride * n) % self._lines
        return (self._base + (line % self._lines) * CACHELINE_BYTES).astype(np.uint64)


class _BurstPattern:
    """Shared take/buffer machinery for landing-plus-burst patterns."""

    def __init__(self, base: int, region_bytes: int, seed: int) -> None:
        self._base = base
        self._lines = region_bytes // CACHELINE_BYTES
        self._rng = DeterministicRng(seed)
        #: (start line incl. consumed offsets, addresses still to emit)
        self._pending: Optional[Tuple[int, int]] = None

    def _next_landing(self) -> Tuple[int, int]:  # pragma: no cover - abstract
        raise NotImplementedError

    def take(self, n: int) -> np.ndarray:
        starts: List[int] = []
        counts: List[int] = []
        filled = 0
        if self._pending is not None:
            start, remaining = self._pending
            emit = min(remaining, n)
            starts.append(start)
            counts.append(emit)
            filled = emit
            self._pending = (start + emit, remaining - emit) if emit < remaining else None
        while filled < n:
            line, burst = self._next_landing()
            emit = min(burst, n - filled)
            starts.append(line)
            counts.append(emit)
            filled += emit
            if emit < burst:
                self._pending = (line + emit, burst - emit)
        return _expand_landings(self._base, self._lines, starts, counts)


class _VecRandom(_BurstPattern):
    """Vector mirror of ``UniformRandomPattern.addresses``."""

    def __init__(self, base: int, region_bytes: int, seed: int, burst: int) -> None:
        super().__init__(base, region_bytes, seed)
        self._burst = burst

    def _next_landing(self) -> Tuple[int, int]:
        rng = self._rng
        line = rng.next_below(self._lines)
        burst = 1 if self._burst == 1 else 1 + rng.next_below(2 * self._burst - 1)
        return line, burst


class _VecZipf(_BurstPattern):
    """Vector mirror of ``ZipfPattern.addresses``."""

    def __init__(
        self,
        base: int,
        region_bytes: int,
        seed: int,
        alpha: float,
        hot_fraction: float,
        burst: int,
    ) -> None:
        super().__init__(base, region_bytes, seed)
        self._alpha = alpha
        self._hot_lines = max(1, int(self._lines * hot_fraction))
        self._log_hot = math.log(self._hot_lines + 1)
        self._burst = burst

    def _next_landing(self) -> Tuple[int, int]:
        rng = self._rng
        if rng.next_float() < 0.7:  # ZipfPattern._hot_probability
            u = max(rng.next_float(), 1e-12) ** (1.0 / self._alpha)
            rank = int(math.exp(u * self._log_hot)) - 1
            rank = min(rank, self._hot_lines - 1)
            line = splitmix64(rank * 0x9E3779B97F4A7C15) % self._lines
        else:
            line = rng.next_below(self._lines)
        burst = 1 + rng.next_below(2 * self._burst - 1) if self._burst > 1 else 1
        return line, burst


class _VecChase(_BurstPattern):
    """Vector mirror of ``PointerChasePattern.addresses``.

    The advance draw (restart float, plus the random-target draw on a
    restart) happens *after* a visit's last yield in the scalar
    generator — i.e. when the next visit's first address is requested —
    so it runs at the top of ``_next_landing`` guarded by a first-visit
    flag.
    """

    def __init__(
        self, base: int, region_bytes: int, seed: int, restart: float, burst: int
    ) -> None:
        super().__init__(base, region_bytes, seed)
        self._restart = restart
        self._burst = burst
        self._current = 0
        self._started = False

    def _next_landing(self) -> Tuple[int, int]:
        rng = self._rng
        if self._started:
            if rng.next_float() < self._restart:
                self._current = rng.next_below(self._lines)
            else:
                self._current = splitmix64(self._current ^ 0xC0FFEE) % self._lines
        self._started = True
        burst = 1 + rng.next_below(2 * self._burst - 1) if self._burst > 1 else 1
        return self._current, burst


class _VecMixed:
    """Vector mirror of ``MixedPattern.addresses``."""

    def __init__(self, subpatterns: List[object], seed: int, phase_length: int) -> None:
        self._subs = subpatterns
        self._rng = DeterministicRng(seed)
        self._phase_length = phase_length
        self._current: Optional[object] = None
        self._remaining = 0

    def take(self, n: int) -> np.ndarray:
        chunks: List[np.ndarray] = []
        filled = 0
        while filled < n:
            if self._remaining == 0:
                self._current = self._subs[self._rng.next_below(len(self._subs))]
                self._remaining = 1 + self._rng.next_below(2 * self._phase_length)
            emit = min(self._remaining, n - filled)
            chunks.append(self._current.take(emit))
            self._remaining -= emit
            filled += emit
        return chunks[0] if len(chunks) == 1 else np.concatenate(chunks)


def make_vector_pattern(
    profile: BenchmarkProfile, region_base: int, region_bytes: int, seed: int
):
    """Vector twin of ``BenchmarkProfile.make_pattern`` (same draw stream)."""
    params = dict(profile.pattern_params)
    kind = profile.pattern_kind
    if kind == "stream":
        return _VecStream(
            region_base, region_bytes, seed, int(params.get("stride_lines", 1))
        )
    if kind == "random":
        return _VecRandom(
            region_base, region_bytes, seed, int(params.get("burst_lines", 1))
        )
    if kind == "zipf":
        return _VecZipf(
            region_base,
            region_bytes,
            seed,
            alpha=params.get("alpha", 0.8),
            hot_fraction=params.get("hot_fraction", 0.1),
            burst=int(params.get("burst_lines", 3)),
        )
    if kind == "chase":
        return _VecChase(
            region_base,
            region_bytes,
            seed,
            restart=params.get("restart_probability", 0.02),
            burst=int(params.get("burst_lines", 2)),
        )
    components = str(params.get("components", "stream,zipf")).split(",")
    subpatterns = []
    for index, sub_kind in enumerate(components):
        sub_seed = seed * len(components) + index + 1
        if sub_kind == "stream":
            subpatterns.append(_VecStream(region_base, region_bytes, sub_seed, 1))
        elif sub_kind == "zipf":
            subpatterns.append(
                _VecZipf(
                    region_base,
                    region_bytes,
                    sub_seed,
                    alpha=params.get("alpha", 0.8),
                    hot_fraction=0.1,
                    burst=int(params.get("burst_lines", 3)),
                )
            )
        elif sub_kind == "random":
            subpatterns.append(
                _VecRandom(
                    region_base, region_bytes, sub_seed,
                    int(params.get("burst_lines", 2)),
                )
            )
        elif sub_kind == "chase":
            subpatterns.append(
                _VecChase(
                    region_base,
                    region_bytes,
                    sub_seed,
                    restart=params.get("restart_probability", 0.02),
                    burst=int(params.get("burst_lines", 2)),
                )
            )
        else:
            raise ValueError(f"unknown mixed component {sub_kind!r}")
    return _VecMixed(subpatterns, seed, int(params.get("phase_length", 256)))


def _geometric_gaps(gap_floats: np.ndarray, gap_log_p: float) -> np.ndarray:
    """Vector mirror of ``TraceGenerator._geometric_gap`` over unit draws."""
    u = np.maximum(gap_floats, 1e-12)
    quotient = np.log(u) / gap_log_p
    gaps = np.floor(quotient)  # quotient >= 0, so floor == int() truncation
    # np.log may differ from math.log in the last ulp; only quotients
    # within a guard band of an integer can truncate differently, so
    # recompute those with the exact scalar formula.
    fraction = quotient - gaps
    band = 1e-9 + np.abs(quotient) * 1e-12
    risky = np.nonzero((fraction < band) | (fraction > 1.0 - band))[0]
    if risky.size:
        gaps[risky] = [
            int(math.log(value) / gap_log_p) for value in u[risky].tolist()
        ]
    return gaps.astype(np.int64)


def core_columns(
    profile: BenchmarkProfile,
    region_base: int,
    region_bytes: int,
    seed: int,
    count: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One core's trace as ``(addresses u64, gaps u32, ops u8)`` columns.

    Bit-identical to draining ``TraceGenerator(...).records(count)``:
    the op draw precedes the gap draw per record (both from the
    ``seed ^ 0x7ACE`` stream), and the address stream consumes its own
    pattern draws.
    """
    pattern = make_vector_pattern(profile, region_base, region_bytes, seed)
    addresses = pattern.take(count)
    trace_rng = VecRng(seed ^ 0x7ACE)
    mean = profile.mean_gap
    if mean:
        draws = trace_rng.floats(2 * count)
        op_floats = draws[0::2]
        gap_log_p = math.log(mean / (mean + 1.0))
        gaps = _geometric_gaps(draws[1::2], gap_log_p)
    else:
        op_floats = trace_rng.floats(count)
        gaps = np.zeros(count, dtype=np.int64)
    ops = (op_floats < profile.write_fraction).astype(np.uint8)
    return (
        np.ascontiguousarray(addresses, dtype="<u8"),
        np.ascontiguousarray(gaps, dtype="<u4"),
        ops,
    )


def workload_columns(
    profiles,
    regions,
    records_per_core: int,
    seed: int,
) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Per-core trace columns for a resolved workload layout.

    Mirrors the per-core seeding of
    :func:`repro.workloads.tracegen.generate_workload` exactly
    (``rng.fork(core_id).next_u64()`` off one ``DeterministicRng(seed)``).
    """
    rng = DeterministicRng(seed)
    columns = []
    for core_id, (profile, (base, size)) in enumerate(zip(profiles, regions)):
        core_seed = rng.fork(core_id).next_u64()
        columns.append(core_columns(profile, base, size, core_seed, records_per_core))
    return columns
