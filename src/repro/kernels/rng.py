"""Vectorised splitmix64 draws, bit-identical to ``DeterministicRng``.

``DeterministicRng`` advances its state by a fixed odd increment
(GOLDEN_GAMMA) per draw, so the *i*-th output after state ``s0`` is a
pure function of ``s0 + i * GOLDEN_GAMMA`` — perfectly vectorisable with
wrapping uint64 arithmetic.  :class:`VecRng` exposes the same draw
sequence as columnar batches; interleaving vector batches with scalar
draws from a ``DeterministicRng`` handed the same state yields one
identical stream.

Bounded draws (``next_below``) use rejection sampling in the scalar
generator.  For the bounds the data plane uses, a rejection is either
impossible (powers of two dividing 2**64) or astronomically rare
(probability below 1e-17 per draw for bounds like 17 or 200), but the
vector path still has to be *exact*: :func:`below_exact` detects any
rejected draw in a batch and falls back to scalar continuation from the
precise state just before the rejected draw.
"""

from __future__ import annotations

import numpy as np

from ..util.rng import MASK64, DeterministicRng

__all__ = [
    "GOLDEN_GAMMA",
    "VecRng",
    "rejection_threshold",
    "vec_splitmix64",
]

GOLDEN_GAMMA = 0x9E3779B97F4A7C15

_GAMMA_U64 = np.uint64(GOLDEN_GAMMA)
_MUL1 = np.uint64(0xBF58476D1CE4E5B9)
_MUL2 = np.uint64(0x94D049BB133111EB)
_SHIFT30 = np.uint64(30)
_SHIFT27 = np.uint64(27)
_SHIFT31 = np.uint64(31)
_SHIFT11 = np.uint64(11)
_INV_2_53 = 1.0 / float(1 << 53)


def rejection_threshold(bound: int) -> int:
    """The scalar generator's rejection threshold for *bound*."""
    return (MASK64 + 1) - ((MASK64 + 1) % bound)


def vec_splitmix64(states: np.ndarray) -> np.ndarray:
    """The pure splitmix64 output function over a uint64 array.

    Equivalent to ``repro.util.rng.splitmix64`` applied elementwise:
    numpy uint64 arithmetic wraps modulo 2**64 exactly like the scalar
    ``& MASK64`` masking.
    """
    with np.errstate(over="ignore"):
        z = states + _GAMMA_U64
        z = (z ^ (z >> _SHIFT30)) * _MUL1
        z = (z ^ (z >> _SHIFT27)) * _MUL2
        return z ^ (z >> _SHIFT31)


class VecRng:
    """Batch view of one ``DeterministicRng`` stream.

    The integer ``state`` property always equals what the scalar
    generator's ``_state`` would be after the same number of draws, so a
    ``DeterministicRng`` can take over (or hand off) at any batch
    boundary.
    """

    def __init__(self, seed: int) -> None:
        self._state = seed & MASK64

    @property
    def state(self) -> int:
        return self._state

    def scalar(self) -> DeterministicRng:
        """A scalar generator continuing this stream from the current state."""
        rng = DeterministicRng(0)
        rng._state = self._state
        return rng

    def u64(self, count: int) -> np.ndarray:
        """The next *count* ``next_u64`` outputs as a uint64 array."""
        if count <= 0:
            return np.empty(0, dtype=np.uint64)
        with np.errstate(over="ignore"):
            states = np.uint64(self._state) + _GAMMA_U64 * np.arange(
                1, count + 1, dtype=np.uint64
            )
            out = vec_splitmix64(states)
        self._state = (self._state + count * GOLDEN_GAMMA) & MASK64
        return out

    def floats(self, count: int) -> np.ndarray:
        """The next *count* ``next_float`` outputs (exactly representable)."""
        return (self.u64(count) >> _SHIFT11).astype(np.float64) * _INV_2_53

    def below_exact(self, bound: int, count: int) -> np.ndarray:
        """The next *count* ``next_below(bound)`` outputs, rejections included.

        Draws in one batch and checks the scalar rejection threshold; if
        any draw would have been rejected (probability ~1e-17 per draw
        for the bounds used here), the accepted prefix is kept and the
        rest of the batch continues through the scalar generator, which
        replays the rejection loop exactly.
        """
        raw = self.u64(count)
        threshold = rejection_threshold(bound)
        if threshold <= MASK64:
            bad = np.nonzero(raw >= np.uint64(threshold))[0]
            if bad.size:  # pragma: no cover - ~1e-17 per draw
                first = int(bad[0])
                # Rewind to just before the first rejected draw and let
                # the scalar rejection loop take over from there.
                self._state = (self._state - (count - first) * GOLDEN_GAMMA) & MASK64
                rng = self.scalar()
                tail = [rng.next_below(bound) for _ in range(count - first)]
                self._state = rng._state
                out = np.empty(count, dtype=np.uint64)
                out[:first] = raw[:first] % np.uint64(bound)
                out[first:] = tail
                return out
        return raw % np.uint64(bound)
