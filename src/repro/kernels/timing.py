"""Vector timing plane: batched warm-up + memo prewarm for the
detailed simulator.

The detailed timing path (``repro.sim.runner.run_benchmark``) spends a
large share of its wall clock outside the event loop proper: the
functional warm-up streams every record through the LLC and the
controller's training state one Python call at a time, and the timed
window then repeatedly recomputes pure per-line values (content bytes,
compressibility classes, scrambler keystreams) that batch kernels can
produce up front.  This module vectorises both, bit-identically:

* :func:`warm_up_vector` replays the warm-up window from the workload's
  trace columns — one :meth:`LastLevelCache.access_many` pass, analytic
  store-version reconstruction (the :mod:`repro.kernels.functional`
  searchsorted machinery), bulk materialisation of the controller's
  stored-state dicts, one more LRU pass for the metadata cache, and the
  batched COPR trainer (:func:`repro.kernels.copr.copr_train_batch`) —
  then rebuilds ``workload.traces`` to start at the timed window.  Any
  configuration it cannot mirror exactly returns ``False`` with no
  state touched; the caller keeps the scalar loop.
* :func:`prewarm_timed_phase` batch-fills the pure memo caches the
  timed window will consult — ``DataModel`` content/class memos at each
  line's warm-state version and the scrambler's keystream cache — so
  first-touch boot encodes hit warm caches.  Every memo is a pure
  function of (line, version) or address, so prewarming is unobservable
  in the results.

The DRAM half of the timing plane (struct-of-arrays candidate
selection) lives in :mod:`repro.dram.channel`; see
docs/ARCHITECTURE.md §13.
"""

from __future__ import annotations

import numpy as np

from ..util.bitops import CACHELINE_BYTES
from .copr import copr_train_batch
from .datagen import line_classes, lines_data
from .functional import (
    _classes_routed,
    _materialize_metadata_lru,
    _metadata_cache_empty,
    _route_models,
)
from .lru import lru_simulate

__all__ = ["warm_up_vector", "prewarm_timed_phase"]

#: Leave headroom under the clear-on-full memo caps so prewarming never
#: triggers the wipe it is trying to avoid.
_MEMO_HEADROOM = 64


def _interleaved_window(columns, count):
    """Round-robin interleave the first *count* records of every core.

    Returns ``(addresses, is_store)`` in scalar warm-up order, or
    ``None`` when any core carries fewer than *count* records.
    """
    address_rows = []
    op_rows = []
    for addresses, __, ops in columns:
        row = np.asarray(addresses, dtype=np.uint64)
        if row.shape[0] < count:
            return None
        address_rows.append(row[:count])
        op_rows.append(np.asarray(ops, dtype=np.uint8)[:count])
    addresses = np.stack(address_rows).T.ravel()
    is_store = np.stack(op_rows).T.ravel() == 1  # MemOp.STORE.value
    return addresses, is_store


def warm_up_vector(workload, llc, controller, warmup_per_core: int) -> bool:
    """Vector replacement for ``repro.sim.runner._warm_up``.

    Leaves the LLC, the controller's training state, the data model's
    version counters, and ``workload.traces`` exactly as the scalar
    warm-up loop would, then zeroes the statistics the same way.
    Returns ``False`` — with *no* state touched — when the workload or
    controller shape cannot be mirrored exactly.
    """
    from ..core.controllers import (
        AttacheController,
        BaselineController,
        IdealController,
        MetadataCacheController,
    )
    from ..cpu.cache import CacheStats
    from ..workloads.bank import replay_records

    columns = getattr(workload, "columns", None)
    if not columns or warmup_per_core <= 0:
        return False
    # Exact types only: subclasses may override the warm hooks.
    kind = type(controller)
    if kind not in (
        BaselineController,
        IdealController,
        MetadataCacheController,
        AttacheController,
    ):
        return False
    if any(llc._lines):
        return False
    data_model = workload.data_model
    if not hasattr(data_model, "regions"):
        return False
    compressed = kind is not BaselineController
    if compressed and (
        controller._stored_compressed or controller._version_written
    ):
        return False
    window = _interleaved_window(columns, warmup_per_core)
    if window is None:
        return False
    addresses, is_store = window

    outcome = llc.access_many(addresses, is_store)
    lines = (addresses >> np.uint64(6)).astype(np.int64)
    total = lines.shape[0]

    # note_store replay: the scalar loop bumps the owning region model's
    # version counter once per store; only the final counts matter.
    regions = data_model.regions
    store_positions = np.nonzero(is_store)[0]
    store_lines = lines[store_positions]
    if store_lines.size:
        unique_store, store_counts = np.unique(
            store_lines, return_counts=True
        )
        owners = _route_models(data_model, unique_store.astype(np.uint64))
        for region_index in range(len(regions)):
            member = np.nonzero(owners == region_index)[0]
            if not member.size:
                continue
            versions = regions[region_index][2]._versions
            for line, count in zip(
                unique_store[member].tolist(), store_counts[member].tolist()
            ):
                versions[line] = versions.get(line, 0) + count

    if compressed:
        # Miss/write-back event reconstruction, exactly as in
        # kernels.functional.simulate_events.
        miss = ~outcome.hit
        miss_pos = outcome.pos[miss]
        miss_line = outcome.key[miss]
        wb_line = outcome.evict_key[miss]
        wb_flag = outcome.evict_dirty[miss]
        event_counts = 1 + wb_flag.astype(np.int64)
        ends = np.cumsum(event_counts)
        starts = ends - event_counts
        n_events = int(ends[-1]) if ends.shape[0] else 0
        ev_is_wb = np.zeros(n_events, dtype=bool)
        ev_is_wb[starts[wb_flag]] = True
        ev_node = np.repeat(np.arange(miss_pos.shape[0]), event_counts)
        ev_pos = miss_pos[ev_node]
        ev_line = np.where(ev_is_wb, wb_line[ev_node], miss_line[ev_node])

        unique_lines = np.unique(lines)
        stride = np.int64(total + 1)
        store_keys = np.sort(
            np.searchsorted(unique_lines, store_lines) * stride
            + store_positions
        )
        wb_index = np.nonzero(ev_is_wb)[0]
        read_index = np.nonzero(~ev_is_wb)[0]
        wb_ids = np.searchsorted(unique_lines, ev_line[wb_index])
        # warm_write records the class/version at the victim's current
        # store count; the pos-p store targets the requesting line,
        # never the victim, so <= and < coincide.
        wb_versions = (
            np.searchsorted(
                store_keys, wb_ids * stride + ev_pos[wb_index], side="right"
            )
            - np.searchsorted(store_keys, wb_ids * stride, side="left")
        )
        wb_classes = _classes_routed(
            data_model, ev_line[wb_index].astype(np.uint64), wb_versions
        )
        # warm_read initialises never-stored lines at version 0 and
        # otherwise returns the stored class — i.e. the last preceding
        # write-back's class, else the version-0 class.
        rd_ids = np.searchsorted(unique_lines, ev_line[read_index])
        wb_sort = np.argsort(wb_ids * stride + ev_pos[wb_index])
        wb_keys_sorted = (wb_ids * stride + ev_pos[wb_index])[wb_sort]
        wb_classes_sorted = wb_classes[wb_sort]
        lo = np.searchsorted(wb_keys_sorted, rd_ids * stride, side="left")
        hi = np.searchsorted(
            wb_keys_sorted, rd_ids * stride + ev_pos[read_index], side="left"
        )
        has_prior = hi > lo
        rd_classes = _classes_routed(
            data_model,
            ev_line[read_index].astype(np.uint64),
            np.zeros(read_index.shape[0], dtype=np.int64),
        )
        rd_classes[has_prior] = wb_classes_sorted[
            np.maximum(hi - 1, 0)[has_prior]
        ]

        # Stored-state materialisation: the last write-back per line
        # wins; lines only ever warm-read keep their version-0 class.
        stored_compressed = controller._stored_compressed
        version_written = controller._version_written
        wb_lines_arr = ev_line[wb_index]
        if wb_index.size:
            order = np.argsort(wb_ids * stride + ev_pos[wb_index])
            sorted_ids = wb_ids[order]
            last = np.empty(order.size, dtype=bool)
            last[-1] = True
            last[:-1] = sorted_ids[:-1] != sorted_ids[1:]
            final_rows = order[last]
            for line, cls, version in zip(
                wb_lines_arr[final_rows].tolist(),
                wb_classes[final_rows].tolist(),
                wb_versions[final_rows].tolist(),
            ):
                stored_compressed[line] = cls
                version_written[line] = version
        read_only = np.setdiff1d(
            np.unique(ev_line[read_index]), np.unique(wb_lines_arr)
        )
        if read_only.size:
            read_only_classes = _classes_routed(
                data_model,
                read_only.astype(np.uint64),
                np.zeros(read_only.size, dtype=np.int64),
            )
            for line, cls in zip(
                read_only.tolist(), read_only_classes.tolist()
            ):
                stored_compressed[line] = cls
                version_written[line] = 0

        if kind is MetadataCacheController:
            metadata_cache = controller.metadata_cache
            if metadata_cache.policy == "lru" and _metadata_cache_empty(
                metadata_cache
            ):
                blocks = ev_line // metadata_cache.coverage_lines
                md = lru_simulate(
                    blocks,
                    ev_is_wb,
                    metadata_cache._sets,
                    metadata_cache._ways,
                )
                stats = metadata_cache.stats
                stats.accesses += md.accesses
                stats.hits += md.hits
                stats.installs += md.misses
                stats.dirty_evictions += md.dirty_evictions
                _materialize_metadata_lru(metadata_cache, md)
            else:
                access = metadata_cache.access
                for line, dirty in zip(ev_line.tolist(), ev_is_wb.tolist()):
                    access(line, make_dirty=dirty)

        if kind is AttacheController:
            ev_comp = np.zeros(n_events, dtype=bool)
            ev_comp[wb_index] = wb_classes
            ev_comp[read_index] = rd_classes
            ev_addresses = ev_line * CACHELINE_BYTES
            if not copr_train_batch(controller.copr, ev_addresses, ev_comp):
                update = controller.copr.update
                for address, compressible in zip(
                    ev_addresses.tolist(), ev_comp.tolist()
                ):
                    update(address, compressible)

    # The timed window resumes where the warm-up stopped.
    workload.traces = [
        replay_records(
            memoryview(addresses_col)[warmup_per_core:],
            memoryview(gaps_col)[warmup_per_core:],
            memoryview(ops_col)[warmup_per_core:],
        )
        for addresses_col, gaps_col, ops_col in columns
    ]
    llc.stats = CacheStats()
    controller.reset_stats()
    return True


def prewarm_timed_phase(workload, controller, offset: int, count: int) -> None:
    """Batch-fill the pure memo caches the timed window will consult.

    Unique lines of the timed window (columns ``[offset:offset+count]``)
    get their content bytes and compressibility class memoised at the
    version the controller's warm state pins (``_version_written``, or
    0 for untouched lines) — the version every first-touch boot encode
    and verification read will ask for — and, for BLEM controllers, the
    scrambler keystream for the line's base address.  All three caches
    are pure functions of their key, so this changes no simulated
    outcome, only when the work happens.
    """
    columns = getattr(workload, "columns", None)
    if not columns or count <= 0:
        return
    version_written = getattr(controller, "_version_written", None)
    if version_written is None:
        return
    data_model = workload.data_model
    if not hasattr(data_model, "regions"):
        return
    rows = []
    for addresses, __, ___ in columns:
        row = np.asarray(addresses, dtype=np.uint64)
        rows.append(row[offset: offset + count] >> np.uint64(6))
    unique_lines = np.unique(np.concatenate(rows)).astype(np.int64)
    if not unique_lines.size:
        return
    versions = np.fromiter(
        (version_written.get(line, 0) for line in unique_lines.tolist()),
        dtype=np.int64,
        count=unique_lines.shape[0],
    )
    owners = _route_models(data_model, unique_lines.astype(np.uint64))
    regions = data_model.regions
    for region_index in range(len(regions)):
        member = np.nonzero(owners == region_index)[0]
        if not member.size:
            continue
        model = regions[region_index][2]
        member_lines = unique_lines[member].astype(np.uint64)
        member_versions = versions[member]
        content_cache = model._content_cache
        limit = model._content_cache_limit - _MEMO_HEADROOM
        missing = np.fromiter(
            (
                (line, version) not in content_cache
                for line, version in zip(
                    member_lines.tolist(), member_versions.tolist()
                )
            ),
            dtype=bool,
            count=member_lines.shape[0],
        )
        if missing.any() and len(content_cache) + int(missing.sum()) < limit:
            need = np.nonzero(missing)[0]
            matrix = lines_data(
                model, member_lines[need], member_versions[need].astype(np.uint64)
            )
            for i, (line, version) in enumerate(
                zip(
                    member_lines[need].tolist(),
                    member_versions[need].tolist(),
                )
            ):
                content_cache[(line, version)] = matrix[i].tobytes()
        class_cache = model._class_cache
        if (
            class_cache is not None
            and len(class_cache) + member_lines.shape[0] < limit
        ):
            classes = line_classes(model, member_lines, member_versions)
            for line, version, cls in zip(
                member_lines.tolist(),
                member_versions.tolist(),
                classes.tolist(),
            ):
                class_cache[(line, version)] = cls

    blem = getattr(controller, "blem", None)
    if blem is None:
        return
    from ..scramble.scrambler import _KEYSTREAM_CACHE_ENTRIES

    scrambler = blem._scrambler
    keystreams = scrambler._keystreams
    line_addresses = unique_lines * CACHELINE_BYTES
    missing_addresses = [
        address
        for address in line_addresses.tolist()
        if address not in keystreams
    ]
    if missing_addresses and (
        len(keystreams) + len(missing_addresses)
        < _KEYSTREAM_CACHE_ENTRIES - _MEMO_HEADROOM
    ):
        from .scramble import keystream_matrix

        matrix = keystream_matrix(
            scrambler.seed,
            np.asarray(missing_addresses, dtype=np.uint64),
        )
        for address, row in zip(missing_addresses, matrix):
            raw = row.tobytes()
            keystreams[address] = (raw, int.from_bytes(raw, "little"))
