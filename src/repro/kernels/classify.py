"""Vectorised size-only BDI/FPC classifiers over N x 64 byte matrices.

Columnar mirror of :mod:`repro.fastpath.classifiers` with ``limit=None``
semantics: each kernel returns the exact best payload size per line
(``-1`` where the scalar classifier returns ``None``), so callers can
apply any byte limit with a comparison instead of re-classifying.

Exactness notes (enforced by differentials in ``tests/test_kernels.py``):

* BDI feasibility uses Python's arbitrary-precision arithmetic in the
  scalar path; the int64 vector mirror adds a sign-consistency check so
  a wrapped ``word - base`` difference can never alias into the delta
  range (wrapping flips the sign relation exactly when the exact
  difference overflows int64);
* FPC zero-run tokens are reproduced with a 16-column scan that tracks
  the position inside the current run (runs are chopped at 8 words, 6
  bits per token), matching the scalar maximal-run walk bit for bit.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..compression.bdi import _BASE_DELTA_CONFIGS
from ..fastpath.classifiers import _BDI_CONFIG_SIZE, _BDI_WIN_ORDER
from ..util.bitops import CACHELINE_BYTES

__all__ = [
    "as_line_matrix",
    "bdi_size_matrix",
    "compressible_mask",
    "fpc_size_matrix",
]

_SIGNED_VIEW = {8: "<i8", 4: "<i4", 2: "<i2"}


def as_line_matrix(lines: Sequence[bytes]) -> np.ndarray:
    """Stack 64-byte lines into a C-contiguous (N, 64) uint8 matrix."""
    return np.frombuffer(b"".join(lines), dtype=np.uint8).reshape(-1, CACHELINE_BYTES)


def _base_delta_feasible_rows(words: np.ndarray, delta_bits: int) -> np.ndarray:
    """Row mask mirroring ``_base_delta_feasible`` over int64 word rows."""
    half = 1 << (delta_bits - 1)
    lo = np.int64(-half)
    hi = np.int64(half - 1)
    small = (words >= lo) & (words <= hi)
    has_base = ~small.all(axis=1)
    # First word outside the implicit zero base becomes the explicit base.
    base_col = np.argmax(~small, axis=1)
    base = words[np.arange(words.shape[0]), base_col]
    with np.errstate(over="ignore"):
        diff = words - base[:, None]
    # diff wraps modulo 2**64; a wrapped value aliases into [lo, hi] only
    # when the exact difference overflowed, which always flips the sign
    # relation between diff and (word >= base).
    in_range = (diff >= lo) & (diff <= hi) & ((diff >= 0) == (words >= base[:, None]))
    ok = small | in_range
    ok[np.arange(words.shape[0]), base_col] = True  # the base word itself
    return np.where(has_base, ok.all(axis=1), True)


def bdi_size_matrix(matrix: np.ndarray) -> np.ndarray:
    """Exact best BDI payload size per line; ``-1`` where BDI rejects."""
    count = matrix.shape[0]
    sizes = np.full(count, -1, dtype=np.int64)
    words_by_base = {}
    for config_id in _BDI_WIN_ORDER:
        base_size, delta_size = _BASE_DELTA_CONFIGS[config_id]
        words = words_by_base.get(base_size)
        if words is None:
            words = matrix.view(_SIGNED_VIEW[base_size]).astype(np.int64)
            words_by_base[base_size] = words
        feasible = _base_delta_feasible_rows(words, 8 * delta_size)
        sizes = np.where((sizes < 0) & feasible, _BDI_CONFIG_SIZE[config_id], sizes)
    repeat8 = (matrix.reshape(count, 8, 8) == matrix[:, None, :8]).all(axis=(1, 2))
    sizes[repeat8] = 9
    sizes[~matrix.any(axis=1)] = 1
    return sizes


def fpc_size_matrix(matrix: np.ndarray) -> np.ndarray:
    """Exact FPC payload size per line; ``-1`` where FPC rejects."""
    count = matrix.shape[0]
    unsigned = matrix.view("<u4").astype(np.int64)
    signed = np.where(unsigned >= 1 << 31, unsigned - (1 << 32), unsigned)
    high = unsigned >> 16
    low = unsigned & 0xFFFF
    high_signed = np.where(high & 0x8000, high - 0x10000, high)
    low_signed = np.where(low & 0x8000, low - 0x10000, low)
    body = np.select(
        [
            (signed >= -8) & (signed <= 7),
            (signed >= -128) & (signed <= 127),
            ((signed >= -32768) & (signed <= 32767)) | (low == 0),
            (high_signed >= -128)
            & (high_signed <= 127)
            & (low_signed >= -128)
            & (low_signed <= 127),
            unsigned == (unsigned & 0xFF) * 0x01010101,
        ],
        [4, 8, 16, 16, 8],
        default=32,
    )
    zero = unsigned == 0
    bits = np.zeros(count, dtype=np.int64)
    run_pos = np.zeros(count, dtype=np.int64)
    for column in range(16):
        is_zero = zero[:, column]
        starts_token = is_zero & (run_pos % 8 == 0)
        bits += np.where(is_zero, np.where(starts_token, 6, 0), 3 + body[:, column])
        run_pos = np.where(is_zero, run_pos + 1, 0)
    sizes = (bits + 7) // 8
    return np.where(sizes >= CACHELINE_BYTES, -1, sizes)


def compressible_mask(matrix: np.ndarray, target: int) -> np.ndarray:
    """Per-line "fits in *target* bytes under any algorithm" mask.

    Boolean mirror of ``CompressionEngine.is_compressible`` for engines
    running exactly the BDI and FPC codecs: the scalar first-fit loop
    returns True iff either codec's exact size is at most *target*.
    """
    bdi = bdi_size_matrix(matrix)
    fpc = fpc_size_matrix(matrix)
    return ((bdi >= 0) & (bdi <= target)) | ((fpc >= 0) & (fpc <= target))
