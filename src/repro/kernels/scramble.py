"""Bulk scrambler keystream generation and XOR.

Columnar mirror of :meth:`repro.scramble.DataScrambler.keystream` for
full cache lines: the keystream is a pure function of
``(seed, address)``, so a batch of addresses maps to an (N, 64) uint8
keystream matrix with three vectorised splitmix64 sweeps (one for the
address-only inner round, one per-chunk round over an (N, 8) grid).
"""

from __future__ import annotations

import numpy as np

from ..util.bitops import CACHELINE_BYTES
from .rng import vec_splitmix64

__all__ = ["keystream_matrix", "xor_lines"]

_ADDRESS_MULT = np.uint64(0x2545F4914F6CDD1D)


def keystream_matrix(seed: int, addresses: np.ndarray) -> np.ndarray:
    """Full-line keystreams for *addresses* as an (N, 64) uint8 matrix.

    Bit-identical to ``DataScrambler(seed).keystream(address, 64)`` per
    row.
    """
    addr = np.ascontiguousarray(addresses, dtype=np.uint64)
    with np.errstate(over="ignore"):
        inner = vec_splitmix64(np.uint64(seed) ^ (addr * _ADDRESS_MULT))
        chunks = np.arange(CACHELINE_BYTES // 8, dtype=np.uint64)
        words = vec_splitmix64(inner[:, None] ^ chunks[None, :])
    # Chunk words assemble little-endian, exactly like the scalar
    # ``key_int |= word << shift`` accumulation.
    return np.ascontiguousarray(words, dtype="<u8").view(np.uint8).reshape(
        -1, CACHELINE_BYTES
    )


def xor_lines(matrix: np.ndarray, keystreams: np.ndarray) -> np.ndarray:
    """XOR an (N, 64) line matrix with its keystream matrix."""
    return matrix ^ keystreams
