"""The batched functional-simulation pipeline.

Columnar mirror of :class:`repro.sim.functional.MissStream` plus the
event loop of :func:`repro.sim.functional.run_functional`:

1. per-core trace columns interleave round-robin into one global
   access stream;
2. one :func:`repro.kernels.lru.lru_simulate` pass replaces the
   per-access LLC walk, producing miss/write-back events with their
   global record positions;
3. line versions at write-back time are answered analytically — the
   version of a line at position *p* is the count of stores to it at
   positions <= *p* (a sorted composite-key lookup), so the scalar
   ``note_store`` bookkeeping never runs;
4. write-back classes and version-0 read classes come from
   :func:`repro.kernels.datagen.line_classes`, routed per data-model
   region; each read's effective class is its line's most recent
   preceding write-back class, exactly like ``MissStream._stored``;
5. the metadata cache is replayed from the event arrays — one more
   ``lru_simulate`` pass for the ``lru`` policy (with the final dict
   state materialised back, so a caller-held cache is left exactly as
   the scalar loop leaves it), or a scalar loop for ``drrip``/``ship``;
   COPR always updates through the scalar predictor, fed from the event
   arrays.

The pipeline never touches ``DataModel._versions`` or LLC dict state;
both live only inside the workload instance built for the run, so the
omission is unobservable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..util.bitops import CACHELINE_BYTES
from .datagen import line_classes
from .lru import lru_simulate

__all__ = ["interleave_columns", "simulate_events", "FunctionalCounters"]


class FunctionalCounters:
    """Counter results of one batched functional pass."""

    __slots__ = ("demand_reads", "demand_writes", "compressible_reads")

    def __init__(self, demand_reads: int, demand_writes: int,
                 compressible_reads: int) -> None:
        self.demand_reads = demand_reads
        self.demand_writes = demand_writes
        self.compressible_reads = compressible_reads


def interleave_columns(columns):
    """Round-robin interleave per-core columns into one global stream.

    Returns ``(addresses, is_store)`` in the exact order
    ``MissStream.events`` consumes records, or ``None`` when the cores'
    record counts differ (the strict transpose needs a rectangle).
    """
    address_rows = [np.asarray(addresses, dtype=np.uint64)
                    for addresses, __, ___ in columns]
    op_rows = [np.asarray(ops, dtype=np.uint8) for __, ___, ops in columns]
    count = address_rows[0].shape[0]
    if any(row.shape[0] != count for row in address_rows):
        return None
    addresses = np.stack(address_rows).T.ravel()
    is_store = np.stack(op_rows).T.ravel() == 1  # MemOp.STORE.value
    return addresses, is_store


def _route_models(data_model, lines: np.ndarray) -> np.ndarray:
    """Region index owning each line (mirrors ``_model_for_line``)."""
    regions = data_model.regions
    bases = np.array([base for base, __, ___ in regions], dtype=np.uint64)
    limits = np.array(
        [base + size for base, size, __ in regions], dtype=np.uint64
    )
    byte = lines * np.uint64(CACHELINE_BYTES)
    index = np.searchsorted(bases, byte, side="right").astype(np.int64) - 1
    clipped = np.clip(index, 0, len(regions) - 1)
    inside = (index >= 0) & (byte < limits[clipped])
    # Out-of-region lines default to the first model, like the scalar.
    return np.where(inside, clipped, 0)


def _classes_routed(
    data_model, lines: np.ndarray, versions: np.ndarray
) -> np.ndarray:
    """Per-region ``line_classes`` over a mixed batch of lines."""
    regions = data_model.regions
    out = np.zeros(lines.shape[0], dtype=bool)
    owners = _route_models(data_model, lines)
    for region_index in range(len(regions)):
        member = np.nonzero(owners == region_index)[0]
        if member.size:
            model = regions[region_index][2]
            out[member] = line_classes(
                model, lines[member], versions[member]
            )
    return out


def _materialize_metadata_lru(metadata_cache, outcome) -> None:
    """Write an ``lru_simulate`` end state back into a MetadataCache.

    Restricted to the ``lru`` policy starting from an empty cache (the
    caller checks both): entries then always carry ``rrpv == 0``, and
    ``reused`` is True exactly when a block saw any access after its
    last install.
    """
    # Per-key suffix access totals since the last install: sort nodes by
    # (key, pos) — outcome arrays are pos-ordered, so a stable key sort
    # gives pos order within each key segment.
    order = np.argsort(outcome.key, kind="stable")
    seg_keys = outcome.key[order]
    seg_hit = outcome.hit[order]
    seg_count = outcome.count[order]
    from repro.core.metadata_cache import _Entry

    sets, ways = outcome.set_tags.shape
    for set_index in range(sets):
        cache_set = metadata_cache._data[set_index]
        for way in range(ways - 1, -1, -1):  # LRU way first: dict order
            tag = int(outcome.set_tags[set_index, way])
            if tag < 0:
                continue
            entry = _Entry(
                dirty=bool(outcome.set_dirty[set_index, way]), rrpv=0
            )
            lo = int(np.searchsorted(seg_keys, tag, side="left"))
            hi = int(np.searchsorted(seg_keys, tag, side="right"))
            # A resident key was installed by its last missing node
            # (the cache started empty, so one exists).
            install = lo + int((~seg_hit[lo:hi]).nonzero()[0][-1])
            entry.reused = bool(seg_count[install:hi].sum() > 1)
            cache_set[tag] = entry


def _metadata_cache_empty(metadata_cache) -> bool:
    return all(not cache_set for cache_set in metadata_cache._data)


def simulate_events(
    workload,
    llc_sets: int,
    llc_ways: int,
    metadata_cache=None,
    copr=None,
) -> Optional[FunctionalCounters]:
    """One batched functional pass over *workload*'s trace columns.

    Returns the demand counters (metadata cache and COPR accumulate
    into the caller's objects, exactly like the scalar event loop), or
    ``None`` when the workload carries no columns / uneven columns —
    the caller falls back to the scalar path.
    """
    columns = getattr(workload, "columns", None)
    if not columns:
        return None
    interleaved = interleave_columns(columns)
    if interleaved is None:
        return None
    addresses, is_store = interleaved
    lines = (addresses >> np.uint64(6)).astype(np.int64)
    total = lines.shape[0]

    outcome = lru_simulate(lines, is_store, llc_sets, llc_ways)
    miss = ~outcome.hit
    miss_pos = outcome.pos[miss]
    miss_line = outcome.key[miss]
    wb_line = outcome.evict_key[miss]
    wb_flag = outcome.evict_dirty[miss]

    # Event assembly: each miss node yields [dirty write-back?, read],
    # in stream order (miss nodes are already pos-sorted).
    event_counts = 1 + wb_flag.astype(np.int64)
    ends = np.cumsum(event_counts)
    starts = ends - event_counts
    n_events = int(ends[-1]) if ends.shape[0] else 0
    ev_is_wb = np.zeros(n_events, dtype=bool)
    ev_is_wb[starts[wb_flag]] = True
    ev_node = np.repeat(np.arange(miss_pos.shape[0]), event_counts)
    ev_pos = miss_pos[ev_node]
    ev_line = np.where(ev_is_wb, wb_line[ev_node], miss_line[ev_node])

    # Dense line ids make (line, pos) composite keys overflow-safe.
    unique_lines = np.unique(lines)
    stride = np.int64(total + 1)
    store_positions = np.nonzero(is_store)[0]
    store_keys = np.sort(
        np.searchsorted(unique_lines, lines[store_positions]) * stride
        + store_positions
    )

    wb_index = np.nonzero(ev_is_wb)[0]
    read_index = np.nonzero(~ev_is_wb)[0]
    wb_ids = np.searchsorted(unique_lines, ev_line[wb_index])
    # Version at write-back = stores to the victim line at pos <= p.
    # The pos-p store (if any) targets the *requesting* line, which can
    # never equal the victim, so <= and < coincide.
    wb_versions = (
        np.searchsorted(store_keys, wb_ids * stride + ev_pos[wb_index],
                        side="right")
        - np.searchsorted(store_keys, wb_ids * stride, side="left")
    )
    wb_lines_u64 = ev_line[wb_index].astype(np.uint64)
    wb_classes = _classes_routed(
        workload.data_model, wb_lines_u64, wb_versions
    )

    # Read class = last preceding write-back's class, else version 0.
    rd_ids = np.searchsorted(unique_lines, ev_line[read_index])
    wb_sort = np.argsort(wb_ids * stride + ev_pos[wb_index])
    wb_keys_sorted = (wb_ids * stride + ev_pos[wb_index])[wb_sort]
    wb_classes_sorted = wb_classes[wb_sort]
    lo = np.searchsorted(wb_keys_sorted, rd_ids * stride, side="left")
    hi = np.searchsorted(
        wb_keys_sorted, rd_ids * stride + ev_pos[read_index], side="left"
    )
    has_prior = hi > lo
    rd_classes = _classes_routed(
        workload.data_model,
        ev_line[read_index].astype(np.uint64),
        np.zeros(read_index.shape[0], dtype=np.int64),
    )
    rd_classes[has_prior] = wb_classes_sorted[
        np.maximum(hi - 1, 0)[has_prior]
    ]

    ev_comp = np.zeros(n_events, dtype=bool)
    ev_comp[wb_index] = wb_classes
    ev_comp[read_index] = rd_classes

    if metadata_cache is not None:
        if (
            metadata_cache.policy == "lru"
            and _metadata_cache_empty(metadata_cache)
        ):
            blocks = ev_line // metadata_cache.coverage_lines
            md = lru_simulate(
                blocks, ev_is_wb, metadata_cache._sets, metadata_cache._ways
            )
            stats = metadata_cache.stats
            stats.accesses += md.accesses
            stats.hits += md.hits
            stats.installs += md.misses
            stats.dirty_evictions += md.dirty_evictions
            _materialize_metadata_lru(metadata_cache, md)
        else:
            access = metadata_cache.access
            for line, dirty in zip(ev_line.tolist(), ev_is_wb.tolist()):
                access(line, make_dirty=dirty)

    if copr is not None:
        ev_addr = (ev_line * CACHELINE_BYTES).tolist()
        comp_list = ev_comp.tolist()
        wb_list = ev_is_wb.tolist()
        predict = copr.predict
        update = copr.update
        for address, is_wb, compressible in zip(ev_addr, wb_list, comp_list):
            if is_wb:
                update(address, compressible)
            else:
                update(
                    address, compressible, predicted=predict(address)
                )

    return FunctionalCounters(
        demand_reads=int(read_index.shape[0]),
        demand_writes=int(wb_index.shape[0]),
        compressible_reads=int(rd_classes.sum()),
    )
