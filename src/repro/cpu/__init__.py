"""Trace-driven CPU substrate: trace records, LLC model and core model."""

from repro.cpu.cache import CacheStats, LastLevelCache
from repro.cpu.core import Core, CoreStats
from repro.cpu.trace import MemOp, TraceRecord, read_trace, write_trace

__all__ = [
    "CacheStats",
    "Core",
    "CoreStats",
    "LastLevelCache",
    "MemOp",
    "TraceRecord",
    "read_trace",
    "write_trace",
]
