"""Out-of-order core approximation (the extended-Ariel substitute).

The model captures what the paper's results depend on: memory-level
parallelism bounded by a miss window, in-order retirement at the window
head, and compute time proportional to the instruction gaps in the trace.

Mechanics:

* Core time advances by ``gap / issue_width`` core cycles per memory
  instruction (non-memory IPC equals the issue width).
* Every LLC miss occupies a slot in a bounded in-flight window (an
  MSHR/ROB hybrid).  When the window is full the core stalls until the
  *oldest* miss completes — the in-order-retirement bottleneck of a real
  OoO core.
* Miss completions may arrive out of order; the window head pops as soon
  as its data is back.

The global simulator owns the clock; a core reports when it can issue
next and is advanced via :meth:`issue_next` / :meth:`complete_miss`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, Optional

from repro.cpu.trace import TraceRecord


@dataclass
class CoreStats:
    """Progress counters for one core."""

    instructions: int = 0
    loads: int = 0
    stores: int = 0
    misses_issued: int = 0
    stall_cycles: float = 0.0


class Core:
    """One trace-driven core."""

    def __init__(
        self,
        core_id: int,
        trace: Iterator[TraceRecord],
        issue_width: int = 4,
        max_outstanding: int = 16,
    ) -> None:
        if issue_width <= 0:
            raise ValueError("issue_width must be positive")
        if max_outstanding <= 0:
            raise ValueError("max_outstanding must be positive")
        self.core_id = core_id
        self._trace = iter(trace)
        self._issue_width = issue_width
        self._max_outstanding = max_outstanding
        self.time: float = 0.0  #: core-cycle clock
        self._next_record: Optional[TraceRecord] = self._pull()
        self._window: Deque[int] = deque()  #: miss tokens, oldest first
        self._done_tokens: Dict[int, float] = {}  #: token -> completion time
        self._next_token = 0
        self.last_completion: float = 0.0
        self.stats = CoreStats()

    def _pull(self) -> Optional[TraceRecord]:
        try:
            return next(self._trace)
        except StopIteration:
            return None

    # ------------------------------------------------------------------
    # State queries for the simulator
    # ------------------------------------------------------------------

    @property
    def finished(self) -> bool:
        """True when the trace is exhausted (misses may still be in flight)."""
        return self._next_record is None

    @property
    def drained(self) -> bool:
        """True when the trace is exhausted and no misses are in flight."""
        return self.finished and not self._window

    @property
    def window_full(self) -> bool:
        return len(self._window) >= self._max_outstanding

    @property
    def outstanding(self) -> int:
        return len(self._window)

    def next_issue_time(self) -> Optional[float]:
        """Core-cycle time of the next memory instruction, or ``None``
        when the core is finished or stalled on a full window."""
        if self._next_record is None or self.window_full:
            return None
        return self.time + self._next_record.gap / self._issue_width

    # ------------------------------------------------------------------
    # Advancement
    # ------------------------------------------------------------------

    def issue_next(self) -> TraceRecord:
        """Consume the next memory instruction and advance core time."""
        if self._next_record is None:
            raise RuntimeError("core trace is exhausted")
        if self.window_full:
            raise RuntimeError("core is stalled on a full miss window")
        record = self._next_record
        self.time += record.gap / self._issue_width
        self.stats.instructions += record.gap + 1
        if record.op.name == "LOAD":
            self.stats.loads += 1
        else:
            self.stats.stores += 1
        self._next_record = self._pull()
        return record

    def register_miss(self) -> int:
        """Allocate a window slot for an LLC miss; returns its token."""
        token = self._next_token
        self._next_token += 1
        self._window.append(token)
        self.stats.misses_issued += 1
        return token

    def complete_miss(self, token: int, core_time: float) -> None:
        """Record the completion of a miss at *core_time* (core cycles).

        Pops the window head as far as completed data allows; if the core
        was stalled on the head, its clock jumps to the unblocking time.
        """
        was_stalled = self.window_full
        self._done_tokens[token] = core_time
        self.last_completion = max(self.last_completion, core_time)
        popped = False
        while self._window and self._window[0] in self._done_tokens:
            head = self._window.popleft()
            self._done_tokens.pop(head)
            popped = True
        if was_stalled and popped and core_time > self.time:
            # The core was blocked on the window head; it resumes now.
            self.stats.stall_cycles += core_time - self.time
            self.time = core_time

    @property
    def completion_time(self) -> float:
        """Final core-cycle timestamp: all work issued and returned."""
        return max(self.time, self.last_completion)
