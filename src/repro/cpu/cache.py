"""Shared last-level cache model (8 MB, 8-way, 64-byte lines in Table II).

Write-allocate, write-back, true-LRU.  The LLC filters the trace: only
misses and dirty evictions reach the memory controller, which is where
all of the paper's mechanisms live.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.util.bitops import CACHELINE_BYTES

#: sentinel distinguishing "absent" from a stored ``False`` dirty flag.
_MISS = object()


@dataclass
class CacheStats:
    """Hit/miss accounting for MPKI and traffic reporting."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def snapshot(self) -> dict:
        """Flat counter view for observability samplers."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
        }


@dataclass(frozen=True)
class Eviction:
    """A victim line pushed out by an allocation."""

    line_address: int
    dirty: bool


class LastLevelCache:
    """Set-associative write-back cache over 64-byte lines.

    ``access`` returns whether the reference hit and, on a miss, the
    eviction (if any) caused by allocating the new line.  The caller is
    responsible for turning misses into memory reads and dirty evictions
    into memory writes.
    """

    def __init__(self, capacity_bytes: int = 8 * 1024 * 1024, ways: int = 8) -> None:
        if ways <= 0:
            raise ValueError("ways must be positive")
        if capacity_bytes % (ways * CACHELINE_BYTES) != 0:
            raise ValueError(
                "capacity must be a whole number of sets: "
                f"{capacity_bytes} bytes / ({ways} ways x {CACHELINE_BYTES} B)"
            )
        self._ways = ways
        self._sets = capacity_bytes // (ways * CACHELINE_BYTES)
        # Each set is an OrderedDict of line_address -> dirty flag,
        # ordered least- to most-recently-used.
        self._lines: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(self._sets)
        ]
        self.stats = CacheStats()

    @property
    def sets(self) -> int:
        return self._sets

    @property
    def ways(self) -> int:
        return self._ways

    def _set_index(self, line_address: int) -> int:
        return line_address % self._sets

    def access(self, address: int, is_write: bool) -> Tuple[bool, Optional[Eviction]]:
        """Look up *address*; allocate on miss.

        Returns ``(hit, eviction)``.  ``eviction`` is non-``None`` only
        when a miss displaced a valid line; its ``dirty`` flag tells the
        caller whether a write-back to memory is needed.
        """
        line = address // CACHELINE_BYTES
        cache_set = self._lines[self._set_index(line)]
        # pop + reinsert is one lookup cheaper than the idiomatic
        # contains/getitem/move_to_end triple and leaves the same
        # LRU order (reinsertion lands at the MRU end).
        dirty = cache_set.pop(line, _MISS)
        if dirty is not _MISS:
            self.stats.hits += 1
            cache_set[line] = dirty or is_write
            return True, None

        self.stats.misses += 1
        eviction: Optional[Eviction] = None
        if len(cache_set) >= self._ways:
            victim_line, victim_dirty = cache_set.popitem(last=False)
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.writebacks += 1
            eviction = Eviction(line_address=victim_line, dirty=victim_dirty)
        cache_set[line] = is_write
        return False, eviction

    def access_many(self, addresses, is_write):
        """Batched :meth:`access` over a whole address stream.

        Vector-timing-plane entry point: runs the chunked-rounds LRU
        kernel (:func:`repro.kernels.lru.lru_simulate`) over the stream,
        materialises the final set contents back into the per-set
        ``OrderedDict`` state (LRU way inserted first, so insertion
        order equals recency order), and accumulates :class:`CacheStats`
        exactly as the scalar loop would.  Only valid from an *empty*
        cache — the kernel assumes cold sets.  Returns the kernel's
        ``LruOutcome`` so callers can reconstruct the miss/eviction
        event stream without replaying it.
        """
        if any(self._lines):
            raise ValueError("access_many requires an empty cache")
        import numpy as np

        from repro.kernels.lru import lru_simulate

        lines = np.asarray(addresses, dtype=np.uint64) // np.uint64(
            CACHELINE_BYTES
        )
        outcome = lru_simulate(
            lines.astype(np.int64),
            np.asarray(is_write, dtype=bool),
            self._sets,
            self._ways,
        )
        set_tags = outcome.set_tags
        set_dirty = outcome.set_dirty
        occupied = np.nonzero((set_tags >= 0).any(axis=1))[0]
        for set_index in occupied.tolist():
            cache_set = self._lines[set_index]
            row_tags = set_tags[set_index]
            row_dirty = set_dirty[set_index]
            for way in range(self._ways - 1, -1, -1):
                tag = int(row_tags[way])
                if tag >= 0:
                    cache_set[tag] = bool(row_dirty[way])
        self.stats.hits += outcome.hits
        self.stats.misses += outcome.misses
        self.stats.evictions += outcome.evictions
        self.stats.writebacks += outcome.dirty_evictions
        return outcome

    def contains(self, address: int) -> bool:
        """True when the line holding *address* is resident."""
        line = address // CACHELINE_BYTES
        return line in self._lines[self._set_index(line)]

    def is_dirty(self, address: int) -> bool:
        """True when the resident line holding *address* is dirty."""
        line = address // CACHELINE_BYTES
        return self._lines[self._set_index(line)].get(line, False)

    def drain_dirty_lines(self) -> List[int]:
        """Return (and clean) every dirty line — end-of-run write-back."""
        dirty: List[int] = []
        for cache_set in self._lines:
            for line, is_dirty in cache_set.items():
                if is_dirty:
                    dirty.append(line)
                    cache_set[line] = False
        return dirty
