"""Memory instruction traces (the Ariel-pintool substitute).

A trace is a sequence of :class:`TraceRecord`, each describing one memory
instruction and the number of non-memory instructions that precede it.
Traces can be generated on the fly by :mod:`repro.workloads` or stored to
disk in a compact binary format for repeatable experiments.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import BinaryIO, Iterable, Iterator


class MemOp(enum.Enum):
    """Kind of memory instruction."""

    LOAD = 0
    STORE = 1


@dataclass(frozen=True)
class TraceRecord:
    """One memory instruction in a trace.

    Attributes:
        gap: non-memory instructions executed since the previous memory
            instruction (used to advance core time).
        op: load or store.
        address: physical byte address accessed.
    """

    gap: int
    op: MemOp
    address: int

    def __post_init__(self) -> None:
        if self.gap < 0:
            raise ValueError("gap must be non-negative")
        if self.address < 0:
            raise ValueError("address must be non-negative")


_RECORD = struct.Struct("<IBQ")  # gap, op, address


def write_trace(stream: BinaryIO, records: Iterable[TraceRecord]) -> int:
    """Serialise records to a binary stream; returns the record count."""
    count = 0
    for record in records:
        stream.write(_RECORD.pack(record.gap, record.op.value, record.address))
        count += 1
    return count


def read_trace(stream: BinaryIO) -> Iterator[TraceRecord]:
    """Yield records from a stream produced by :func:`write_trace`."""
    while True:
        chunk = stream.read(_RECORD.size)
        if not chunk:
            return
        if len(chunk) != _RECORD.size:
            raise ValueError("truncated trace stream")
        gap, op, address = _RECORD.unpack(chunk)
        yield TraceRecord(gap=gap, op=MemOp(op), address=address)
